package experiments

import (
	"strings"
	"testing"

	"repro/scc"
	"repro/schedsim"
)

// testScale keeps experiment tests fast; shape assertions hold from
// this size up.
const testScale = 0.125

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 9 {
		t.Fatalf("suite has %d datasets, want the paper's 9", len(suite))
	}
	want := []string{"livej", "flickr", "baidu", "wiki", "friend", "twitter", "orkut", "patents", "ca-road"}
	for i, d := range suite {
		if d.Name != want[i] {
			t.Fatalf("dataset %d is %q, want %q", i, d.Name, want[i])
		}
		if d.Paper.Nodes == 0 || d.Paper.LargestSCC == 0 && d.Name != "patents" {
			t.Fatalf("%s missing paper numbers", d.Name)
		}
	}
}

func TestFindAndNames(t *testing.T) {
	if _, err := Find("flickr"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if len(Names()) != 9 {
		t.Fatal("Names incomplete")
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	d, _ := Find("baidu")
	g1, g2 := d.Build(testScale), d.Build(testScale)
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("dataset generation not deterministic")
	}
}

func TestSuiteStructuralTargets(t *testing.T) {
	for _, d := range Suite() {
		g := d.Build(testScale)
		res, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
		if err != nil {
			t.Fatal(err)
		}
		giant := float64(res.LargestSCC()) / float64(g.NumNodes())
		switch d.Name {
		case "patents":
			if giant*float64(g.NumNodes()) != 1 {
				t.Fatalf("patents has a non-trivial SCC (giant=%f)", giant)
			}
		case "orkut":
			if giant < 0.8 {
				t.Fatalf("orkut giant %f, want near-total", giant)
			}
		default:
			// Every other graph has a giant SCC covering a significant
			// fraction, plus many trivial SCCs.
			if giant < 0.15 || giant > 0.95 {
				t.Fatalf("%s giant fraction %f out of small-world band", d.Name, giant)
			}
			if res.NumSCCs < int64(g.NumNodes())/20 {
				t.Fatalf("%s has too few SCCs (%d) for a power-law tail", d.Name, res.NumSCCs)
			}
		}
	}
}

func TestTable1RowsAndFormat(t *testing.T) {
	rows := Table1(testScale, 2)
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 0 || r.Edges == 0 {
			t.Fatalf("%s row empty", r.Name)
		}
		if r.LargestSCC <= 0 {
			t.Fatalf("%s largest SCC %d", r.Name, r.LargestSCC)
		}
		if r.Diameter <= 0 {
			t.Fatalf("%s diameter %d", r.Name, r.Diameter)
		}
	}
	// ca-road must have by far the largest diameter (non-small-world).
	var road, maxOther int
	for _, r := range rows {
		if r.Name == "ca-road" {
			road = r.Diameter
		} else if r.Diameter > maxOther {
			maxOther = r.Diameter
		}
	}
	if road <= 2*maxOther {
		t.Fatalf("ca-road diameter %d not dominant over %d", road, maxOther)
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "ca-road*") || !strings.Contains(text, "livej") {
		t.Fatalf("format missing rows:\n%s", text)
	}
}

func TestSizeDistributionShape(t *testing.T) {
	d, _ := Find("livej")
	sd := SizeDistribution(d, testScale)
	if sd.Trivial == 0 {
		t.Fatal("no size-1 SCCs")
	}
	if sd.Largest < int64(float64(sd.Nodes)*0.15) {
		t.Fatalf("giant %d too small for n=%d", sd.Largest, sd.Nodes)
	}
	// Power law: bucket counts must decay from size-1 up.
	if len(sd.Buckets) < 3 {
		t.Fatalf("buckets %v too shallow", sd.Buckets)
	}
	if sd.Buckets[0] < sd.Buckets[1] || sd.Buckets[1] < sd.Buckets[2] {
		t.Fatalf("bucket counts not decaying: %v", sd.Buckets)
	}
	if out := FormatSizeDist(sd); !strings.Contains(out, "livej") {
		t.Fatal("format broken")
	}
}

func TestTaskLogShape(t *testing.T) {
	d, _ := Find("flickr")
	tl := TaskLog(d, testScale, 1, 5)
	if len(tl.Records) == 0 {
		t.Fatal("no task records")
	}
	// §3.3's observation: Method 1's early tasks find small SCCs and
	// produce little further partitioning, while Method 2's WCC
	// seeding gives a far deeper queue.
	if tl.PeakDepthM2 < 10*tl.PeakDepthM1 {
		t.Fatalf("M2 peak %d not ≫ M1 peak %d", tl.PeakDepthM2, tl.PeakDepthM1)
	}
	if tl.TasksM2 < 50 {
		t.Fatalf("M2 seeded only %d tasks", tl.TasksM2)
	}
	if out := FormatTaskLog(tl); !strings.Contains(out, "Remain") {
		t.Fatal("format broken")
	}
}

func TestFigure8FractionsSumToOne(t *testing.T) {
	rows := Figure8(testScale, 1)
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		sum := 0.0
		for _, f := range r.Fractions {
			if f < 0 || f > 1 {
				t.Fatalf("%s fraction %f out of range", r.Dataset, f)
			}
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s fractions sum to %f", r.Dataset, sum)
		}
	}
	if out := FormatFigure8(rows); !strings.Contains(out, "Par-WCC") {
		t.Fatal("format broken")
	}
}

func TestFigure6ModeledShape(t *testing.T) {
	d, _ := Find("flickr") // heaviest mid-size tail → clearest M2 advantage
	s := Figure6(d, testScale, []int{1, 8, 32}, Modeled, schedsim.PaperMachine(), 1)
	if s.TarjanTime <= 0 {
		t.Fatal("no Tarjan baseline")
	}
	for _, alg := range []string{"Baseline", "Method1", "Method2"} {
		pts := s.Series[alg]
		if len(pts) != 3 {
			t.Fatalf("%s has %d points", alg, len(pts))
		}
		// Modeled time must not increase with threads by more than
		// noise (the model is monotone except for barrier effects).
		if pts[2].Time > pts[0].Time {
			t.Fatalf("%s modeled time grew with threads: %v → %v", alg, pts[0].Time, pts[2].Time)
		}
	}
	// The paper's headline ordering at high thread counts. Method 1
	// and Method 2 tie on some instances (the paper's Wiki/Orkut
	// plots), so only a clear regression fails; Baseline must lose
	// decisively to both.
	m2 := s.Series["Method2"][2].Speedup
	m1 := s.Series["Method1"][2].Speedup
	base := s.Series["Baseline"][2].Speedup
	if m2 < 0.9*m1 {
		t.Fatalf("Method2 regressed vs Method1: %.2f vs %.2f", m2, m1)
	}
	if m1 <= base || m2 <= base {
		t.Fatalf("methods do not beat Baseline: M2=%.2f M1=%.2f Base=%.2f", m2, m1, base)
	}
	if out := FormatFigure6(s); !strings.Contains(out, "flickr") {
		t.Fatal("format broken")
	}
}

func TestFigure6MeasuredRuns(t *testing.T) {
	d, _ := Find("baidu")
	s := Figure6(d, testScale, []int{1, 2}, Measured, schedsim.PaperMachine(), 1)
	for alg, pts := range s.Series {
		for _, p := range pts {
			if p.Time <= 0 {
				t.Fatalf("%s measured time %v", alg, p.Time)
			}
		}
	}
}

func TestFigure7Breakdown(t *testing.T) {
	d, _ := Find("flickr")
	rows := Figure7(d, testScale, []int{1, 32}, Modeled, schedsim.PaperMachine(), 1)
	if len(rows) != 6 { // 3 algorithms × 2 thread counts
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Fatalf("%s@%d total %v", r.Algorithm, r.Threads, r.Total)
		}
	}
	// Baseline's recursive phase must dominate its breakdown and not
	// shrink with threads (the giant-SCC serialization).
	var base1, base32 BreakdownRow
	for _, r := range rows {
		if r.Algorithm == "Baseline" && r.Threads == 1 {
			base1 = r
		}
		if r.Algorithm == "Baseline" && r.Threads == 32 {
			base32 = r
		}
	}
	shrink := float64(base32.Phases[scc.PhaseRecurFWBW]) / float64(base1.Phases[scc.PhaseRecurFWBW])
	if shrink < 0.4 {
		t.Fatalf("Baseline recursive phase shrank %.2fx with threads; giant SCC should serialize it", shrink)
	}
	if out := FormatFigure7("flickr", rows); !strings.Contains(out, "Recur-FWBW") {
		t.Fatal("format broken")
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	series := []SpeedupSeries{
		{Dataset: "a", Series: map[string][]SpeedupPoint{"Method2": {{Threads: 32, Speedup: 4}}}},
		{Dataset: "b", Series: map[string][]SpeedupPoint{"Method2": {{Threads: 32, Speedup: 16}}}},
		{Dataset: "ca-road", Series: map[string][]SpeedupPoint{"Method2": {{Threads: 32, Speedup: 0.1}}}},
	}
	got := GeoMeanSpeedup(series, "Method2", 32, "ca-road")
	if got < 7.9 || got > 8.1 {
		t.Fatalf("geomean = %f, want 8", got)
	}
	if GeoMeanSpeedup(series, "Method2", 99) != 0 {
		t.Fatal("missing thread count should yield 0")
	}
}

func TestAblationHybridFaster(t *testing.T) {
	d, _ := Find("flickr")
	h := AblationHybrid(d, testScale, 1)
	// The hybrid representation must win; on large graphs the paper
	// reports ~10x — at test scale, with machine noise, we only insist
	// on a clear win.
	if h.Speedup() < 1.25 {
		t.Fatalf("hybrid speedup only %.2fx", h.Speedup())
	}
}

func TestAblationTrim2CutsWCC(t *testing.T) {
	d, _ := Find("flickr")
	a := AblationTrim2(d, testScale, 1)
	if a.Pairs == 0 {
		t.Fatal("Trim2 claimed no pairs on flickr analog")
	}
	// Trim2 must not make WCC slower by more than noise, and must
	// reduce the task count... actually it reduces *nodes entering
	// WCC*; tasks may stay similar. Insist WCC-with ≤ WCC-without×1.3.
	if float64(a.WCCWith) > 1.3*float64(a.WCCWithout) {
		t.Fatalf("Trim2 made WCC slower: %v vs %v", a.WCCWith, a.WCCWithout)
	}
}

func TestAblationKSweep(t *testing.T) {
	d, _ := Find("flickr")
	pts := AblationK(d, testScale, 1, []int{1, 8})
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Total <= 0 || p.PeakReady <= 0 {
			t.Fatalf("K=%d: %+v", p.K, p)
		}
	}
	out := FormatAblations(AblationHybrid(d, testScale, 1), AblationTrim2(d, testScale, 1), pts)
	if !strings.Contains(out, "K=1") {
		t.Fatal("format broken")
	}
}

func TestDistScalingExperiment(t *testing.T) {
	d, _ := Find("baidu")
	ds := DistScalingExperiment(d, testScale, []int{1, 4}, 1)
	if len(ds.Points) != 2 {
		t.Fatalf("%d points", len(ds.Points))
	}
	if ds.Points[0].Messages != 0 {
		t.Fatalf("1-worker run exchanged %d messages", ds.Points[0].Messages)
	}
	if ds.Points[1].Messages == 0 {
		t.Fatal("4-worker run exchanged no messages")
	}
	if ds.Points[0].NumSCCs != ds.Points[1].NumSCCs {
		t.Fatal("SCC counts differ across cluster sizes")
	}
	if out := FormatDistScaling(ds); !strings.Contains(out, "msgs/edge") {
		t.Fatal("format broken")
	}
}

func TestRelatedComparison(t *testing.T) {
	d, _ := Find("baidu")
	rc := Related(d, testScale, 1)
	if len(rc.Rows) != 9 {
		t.Fatalf("%d rows, want 9 algorithms", len(rc.Rows))
	}
	for _, r := range rc.Rows {
		if r.Time <= 0 {
			t.Fatalf("%s time %v", r.Algorithm, r.Time)
		}
	}
	if out := FormatRelated(rc); !strings.Contains(out, "OBF") || !strings.Contains(out, "FW-BW") {
		t.Fatal("format broken")
	}
}

func TestSmallWorldSweep(t *testing.T) {
	points := SmallWorldSweep(3000, 3, []float64{0, 0.05, 1.0}, 1)
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// §2.2: rewiring collapses the diameter dramatically.
	if points[0].Diameter < 5*points[1].Diameter {
		t.Fatalf("diameter %d → %d: no collapse at beta=0.05", points[0].Diameter, points[1].Diameter)
	}
	if points[2].Diameter > points[1].Diameter {
		t.Fatalf("diameter grew from beta 0.05 to 1.0: %d → %d", points[1].Diameter, points[2].Diameter)
	}
	// And the BFS level count tracks the diameter class.
	if points[0].Phase1Levels != 0 && points[2].Phase1Levels != 0 &&
		points[0].Phase1Levels < points[2].Phase1Levels {
		t.Fatalf("BFS levels did not shrink with diameter: %d vs %d",
			points[0].Phase1Levels, points[2].Phase1Levels)
	}
	if out := FormatSmallWorld(points); !strings.Contains(out, "beta") {
		t.Fatal("format broken")
	}
}

func TestComparePartitioning(t *testing.T) {
	d, _ := Find("baidu")
	pc := ComparePartitioning(d, testScale, 4, 1)
	if pc.BlockMessages == 0 || pc.HashMessages == 0 {
		t.Fatalf("%+v", pc)
	}
	if out := FormatPartitionComparison(pc); !strings.Contains(out, "block=") {
		t.Fatal("format broken")
	}
}
