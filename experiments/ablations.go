package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/scc"
)

// HybridAblation quantifies the §4.1 claim that the hybrid set
// representation (explicit per-task node lists next to the Color
// array) is about an order of magnitude faster than working from the
// Color array alone.
type HybridAblation struct {
	Dataset string
	// WithHybrid and WithoutHybrid are total Method 2 times.
	WithHybrid, WithoutHybrid time.Duration
	// RecurWith and RecurWithout isolate the recursive phase, where
	// the representations differ.
	RecurWith, RecurWithout time.Duration
}

// Speedup is the overall hybrid-representation advantage.
func (h HybridAblation) Speedup() float64 {
	return float64(h.WithoutHybrid) / float64(h.WithHybrid)
}

// AblationHybrid measures Method 2 with and without the hybrid
// representation.
func AblationHybrid(d Dataset, scale float64, seed int64) HybridAblation {
	g := d.Build(scale)
	out := HybridAblation{Dataset: d.Name}
	out.WithHybrid = measure(2, func() {
		res := detect(g, scc.Options{Algorithm: scc.Method2, Seed: seed})
		out.RecurWith = res.Phases[scc.PhaseRecurFWBW].Time
	})
	out.WithoutHybrid = measure(2, func() {
		res := detect(g, scc.Options{Algorithm: scc.Method2, Seed: seed, DisableHybrid: true})
		out.RecurWithout = res.Phases[scc.PhaseRecurFWBW].Time
	})
	return out
}

// Trim2Ablation quantifies the §3.4 claim: Trim2 gives only marginal
// direct speedup but cuts the Par-WCC step's time by up to 50% by
// removing chains of weakly connected size-2 SCCs.
type Trim2Ablation struct {
	Dataset string
	// WCCWith/WCCWithout are Par-WCC phase times with and without the
	// preceding Trim2.
	WCCWith, WCCWithout time.Duration
	// TotalWith/TotalWithout are end-to-end Method 2 times.
	TotalWith, TotalWithout time.Duration
	// Pairs is the number of size-2 SCCs Trim2 claimed.
	Pairs int64
	// WCCTasksWith/WCCTasksWithout are the seeded task counts.
	WCCTasksWith, WCCTasksWithout int
}

// WCCReduction is the fractional Par-WCC time saved by Trim2.
func (t Trim2Ablation) WCCReduction() float64 {
	if t.WCCWithout == 0 {
		return 0
	}
	return 1 - float64(t.WCCWith)/float64(t.WCCWithout)
}

// AblationTrim2 measures Method 2 with and without Trim2.
func AblationTrim2(d Dataset, scale float64, seed int64) Trim2Ablation {
	g := d.Build(scale)
	out := Trim2Ablation{Dataset: d.Name}
	out.TotalWith = measure(2, func() {
		res := detect(g, scc.Options{Algorithm: scc.Method2, Seed: seed})
		out.WCCWith = res.Phases[scc.PhaseParWCC].Time
		out.WCCTasksWith = res.WCCComponents
		out.Pairs = res.Phases[scc.PhaseParTrimPost].SCCs
	})
	out.TotalWithout = measure(2, func() {
		res := detect(g, scc.Options{Algorithm: scc.Method2, Seed: seed, DisableTrim2: true})
		out.WCCWithout = res.Phases[scc.PhaseParWCC].Time
		out.WCCTasksWithout = res.WCCComponents
	})
	return out
}

// KSweepPoint is one batch-size sample of the §4.3 work-queue K sweep.
type KSweepPoint struct {
	K     int
	Total time.Duration
	// PeakReady is the observed maximum queue depth at this K.
	PeakReady int64
}

// AblationK sweeps the two-level work queue's batch size K under
// Method 2 (the paper uses K=1 for Baseline/Method 1 and K=8 for
// Method 2).
func AblationK(d Dataset, scale float64, seed int64, ks []int) []KSweepPoint {
	g := d.Build(scale)
	var out []KSweepPoint
	for _, k := range ks {
		var peak int64
		t := measure(2, func() {
			res := detect(g, scc.Options{Algorithm: scc.Method2, Seed: seed, K: k})
			peak = res.Queue.PeakReady
		})
		out = append(out, KSweepPoint{K: k, Total: t, PeakReady: peak})
	}
	return out
}

// FormatAblations renders the three ablation studies.
func FormatAblations(h HybridAblation, t2 Trim2Ablation, ks []KSweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hybrid representation (§4.1) on %s:\n", h.Dataset)
	fmt.Fprintf(&b, "  with hybrid:    total=%v recur=%v\n", h.WithHybrid.Round(time.Microsecond), h.RecurWith.Round(time.Microsecond))
	fmt.Fprintf(&b, "  color-scan only: total=%v recur=%v  (%.1fx slower)\n",
		h.WithoutHybrid.Round(time.Microsecond), h.RecurWithout.Round(time.Microsecond), h.Speedup())
	fmt.Fprintf(&b, "Trim2 (§3.4) on %s: %d pairs claimed\n", t2.Dataset, t2.Pairs)
	fmt.Fprintf(&b, "  WCC time: with=%v without=%v (%.0f%% reduction); tasks %d vs %d\n",
		t2.WCCWith.Round(time.Microsecond), t2.WCCWithout.Round(time.Microsecond),
		100*t2.WCCReduction(), t2.WCCTasksWith, t2.WCCTasksWithout)
	fmt.Fprintf(&b, "Work-queue batch size K (§4.3):\n")
	for _, p := range ks {
		fmt.Fprintf(&b, "  K=%-3d total=%v peak-depth=%d\n", p.K, p.Total.Round(time.Microsecond), p.PeakReady)
	}
	return b.String()
}
