package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/dist"
	"repro/internal/verify"
	"repro/scc"
)

// DistPoint is one cluster size's communication profile.
type DistPoint struct {
	Workers int
	// Messages is the total cross-worker message count; Supersteps the
	// total number of global barriers.
	Messages   int64
	Supersteps int
	// PhaseMessages breaks messages down by distributed phase.
	PhaseMessages [dist.NumDistPhases]int64
	Time          time.Duration
	NumSCCs       int64
}

// DistScaling is the §6 extension experiment: how communication volume
// and barrier count scale with the cluster size for the distributed
// Method 2 pipeline.
type DistScaling struct {
	Dataset string
	Edges   int64
	Points  []DistPoint
}

// DistScalingExperiment runs the distributed pipeline on the dataset
// at each cluster size, verifying every result against Tarjan.
func DistScalingExperiment(d Dataset, scale float64, workers []int, seed int64) DistScaling {
	g := d.Build(scale)
	ref := detect(g, scc.Options{Algorithm: scc.Tarjan})
	out := DistScaling{Dataset: d.Name, Edges: g.NumEdges()}
	for _, w := range workers {
		res := dist.Run(g, dist.Options{Workers: w, Seed: seed})
		if !verify.SamePartition(res.Comp, ref.Comp) {
			panic(fmt.Sprintf("distributed result wrong on %s at %d workers", d.Name, w))
		}
		p := DistPoint{Workers: w, Time: res.Total, NumSCCs: res.NumSCCs}
		for ph := dist.PhaseID(0); ph < dist.NumDistPhases; ph++ {
			p.Messages += res.Phases[ph].Messages
			p.Supersteps += res.Phases[ph].Supersteps
			p.PhaseMessages[ph] = res.Phases[ph].Messages
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// FormatDistScaling renders the communication-scaling table.
func FormatDistScaling(ds DistScaling) string {
	var b strings.Builder
	fmt.Fprintf(&b, "distributed Method 2 on %s (%d edges): communication scaling\n", ds.Dataset, ds.Edges)
	fmt.Fprintf(&b, "%8s %12s %10s %12s %10s", "workers", "messages", "msgs/edge", "supersteps", "time")
	for ph := dist.PhaseID(0); ph < dist.NumDistPhases; ph++ {
		fmt.Fprintf(&b, " %10s", ph)
	}
	fmt.Fprintln(&b)
	for _, p := range ds.Points {
		fmt.Fprintf(&b, "%8d %12d %10.2f %12d %10v",
			p.Workers, p.Messages, float64(p.Messages)/float64(ds.Edges),
			p.Supersteps, p.Time.Round(time.Millisecond))
		for _, m := range p.PhaseMessages {
			fmt.Fprintf(&b, " %10d", m)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// PartitionComparison contrasts block and hash partitioning at one
// cluster size — the locality trade-off a real deployment tunes.
type PartitionComparison struct {
	Dataset       string
	Workers       int
	BlockMessages int64
	HashMessages  int64
}

// ComparePartitioning runs the distributed pipeline under both
// partitioning strategies and reports total message volumes.
func ComparePartitioning(d Dataset, scale float64, workers int, seed int64) PartitionComparison {
	g := d.Build(scale)
	ref := detect(g, scc.Options{Algorithm: scc.Tarjan})
	out := PartitionComparison{Dataset: d.Name, Workers: workers}
	for _, p := range []dist.Partition{dist.PartitionBlock, dist.PartitionHash} {
		res := dist.Run(g, dist.Options{Workers: workers, Seed: seed, Partition: p})
		if !verify.SamePartition(res.Comp, ref.Comp) {
			panic(fmt.Sprintf("partition %v broke %s", p, d.Name))
		}
		var m int64
		for ph := dist.PhaseID(0); ph < dist.NumDistPhases; ph++ {
			m += res.Phases[ph].Messages
		}
		if p == dist.PartitionBlock {
			out.BlockMessages = m
		} else {
			out.HashMessages = m
		}
	}
	return out
}

// FormatPartitionComparison renders the block-vs-hash table.
func FormatPartitionComparison(pc PartitionComparison) string {
	return fmt.Sprintf("partitioning on %s at %d workers: block=%d msgs, hash=%d msgs (%.2fx)\n",
		pc.Dataset, pc.Workers, pc.BlockMessages, pc.HashMessages,
		float64(pc.HashMessages)/float64(pc.BlockMessages))
}
