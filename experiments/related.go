package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/scc"
)

// RelatedRow is one algorithm's showing in the related-work comparison
// (§1/§2 of the paper: Fleischer's FW-BW, Barnat's OBF, McLendon's
// FW-BW-Trim, and the paper's two methods, all against Tarjan).
type RelatedRow struct {
	Algorithm string
	Time      time.Duration
	// VsTarjan is the speedup relative to Tarjan (< 1 means slower).
	VsTarjan float64
	// PeakQueue is the work-queue depth, the task-parallelism measure.
	PeakQueue int64
}

// RelatedComparison measures every implemented algorithm on one
// dataset at the host's worker count.
type RelatedComparison struct {
	Dataset string
	Rows    []RelatedRow
}

// Related runs the full algorithm roster on the dataset.
func Related(d Dataset, scale float64, seed int64) RelatedComparison {
	g := d.Build(scale)
	tarjanTime := measure(3, func() { detect(g, scc.Options{Algorithm: scc.Tarjan}) })
	out := RelatedComparison{Dataset: d.Name}
	out.Rows = append(out.Rows, RelatedRow{Algorithm: "Tarjan", Time: tarjanTime, VsTarjan: 1})
	for _, alg := range []scc.Algorithm{scc.Kosaraju, scc.FWBW, scc.OBF, scc.Coloring, scc.MultiStep, scc.Baseline, scc.Method1, scc.Method2} {
		var peak int64
		t := measure(2, func() {
			res := detect(g, scc.Options{Algorithm: alg, Seed: seed})
			peak = res.Queue.PeakReady
		})
		out.Rows = append(out.Rows, RelatedRow{
			Algorithm: alg.String(),
			Time:      t,
			VsTarjan:  float64(tarjanTime) / float64(t),
			PeakQueue: peak,
		})
	}
	return out
}

// FormatRelated renders the comparison table.
func FormatRelated(rc RelatedComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "algorithm roster on %s (host worker count)\n", rc.Dataset)
	fmt.Fprintf(&b, "%-10s %12s %9s %10s\n", "algorithm", "time", "vs-Tarjan", "peak-queue")
	for _, r := range rc.Rows {
		fmt.Fprintf(&b, "%-10s %12v %8.2fx %10d\n",
			r.Algorithm, r.Time.Round(time.Microsecond), r.VsTarjan, r.PeakQueue)
	}
	return b.String()
}
