package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/graph"
	"repro/scc"
	"repro/schedsim"
)

// Mode selects how thread sweeps are produced.
type Mode int

const (
	// Modeled replays single-worker instrumented runs through the
	// machine model and scheduling simulator — the right mode when the
	// host has fewer cores than the sweep's thread counts (it
	// reproduces the *shape* of Figure 6 independent of host size).
	Modeled Mode = iota
	// Measured runs each thread count for real and reports wall-clock
	// speedups; only meaningful up to the host's core count.
	Measured
)

// String names the mode.
func (m Mode) String() string {
	if m == Measured {
		return "measured"
	}
	return "modeled"
}

// DefaultThreads is the paper's x-axis: 1..32 threads in powers of two.
var DefaultThreads = []int{1, 2, 4, 8, 16, 32}

// SpeedupPoint is one (threads, speedup) sample for one algorithm.
type SpeedupPoint struct {
	Threads int
	// Speedup is relative to sequential Tarjan on the same graph, as
	// in Figure 6.
	Speedup float64
	// Time is the (measured or modeled) execution time.
	Time time.Duration
}

// SpeedupSeries is one dataset's subplot of Figure 6.
type SpeedupSeries struct {
	Dataset    string
	Mode       Mode
	TarjanTime time.Duration
	// Series maps algorithm name → samples at each thread count.
	Series map[string][]SpeedupPoint
}

// Figure6 produces the speedup-vs-threads series for one dataset.
// Modeled mode runs each algorithm once at one worker with full
// instrumentation and projects each thread count through the machine
// model; Measured mode executes each thread count directly.
func Figure6(d Dataset, scale float64, threads []int, mode Mode, machine schedsim.MachineModel, seed int64) SpeedupSeries {
	g := d.Build(scale)
	return figure6On(g, d.Name, threads, mode, machine, seed)
}

func figure6On(g *graph.Graph, name string, threads []int, mode Mode, machine schedsim.MachineModel, seed int64) SpeedupSeries {
	out := SpeedupSeries{Dataset: name, Mode: mode, Series: make(map[string][]SpeedupPoint)}
	out.TarjanTime = measure(3, func() {
		if _, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan}); err != nil {
			panic(err)
		}
	})
	for _, alg := range sortedAlgs() {
		var points []SpeedupPoint
		switch mode {
		case Modeled:
			res := instrumentedRun(g, alg, seed)
			for _, p := range threads {
				t := ModelTotal(res, machine, p)
				points = append(points, SpeedupPoint{Threads: p, Time: t,
					Speedup: float64(out.TarjanTime) / float64(t)})
			}
		case Measured:
			for _, p := range threads {
				t := measure(2, func() {
					detect(g, scc.Options{Algorithm: alg, Workers: p, Seed: seed})
				})
				points = append(points, SpeedupPoint{Threads: p, Time: t,
					Speedup: float64(out.TarjanTime) / float64(t)})
			}
		}
		out.Series[alg.String()] = points
	}
	return out
}

func detect(g *graph.Graph, opts scc.Options) *scc.Result {
	// The experiment drivers run under the callers' process lifetime;
	// context.Background keeps them uncancellable while still going
	// through the primary DetectContext entry point.
	res, err := scc.DetectContext(context.Background(), g, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// instrumentedRun measures a single-worker fully instrumented run,
// twice, keeping the faster one — single samples are too noisy to
// project through the machine model.
func instrumentedRun(g *graph.Graph, alg scc.Algorithm, seed int64) *scc.Result {
	best := detect(g, scc.Options{Algorithm: alg, Workers: 1, Seed: seed, TraceSchedule: true})
	again := detect(g, scc.Options{Algorithm: alg, Workers: 1, Seed: seed, TraceSchedule: true})
	if again.Total < best.Total {
		best = again
	}
	return best
}

// ModelTotal projects a single-worker instrumented run onto p threads
// of the machine: data-parallel phases shrink by the machine's
// effective parallelism (paying per-round barriers), and the recursive
// phase's recorded task DAG is replayed through list scheduling.
func ModelTotal(res *scc.Result, machine schedsim.MachineModel, p int) time.Duration {
	var total time.Duration
	for ph := scc.Phase(0); ph < scc.NumPhases; ph++ {
		if ph == scc.PhaseRecurFWBW {
			continue
		}
		st := res.Phases[ph]
		if st.Time == 0 {
			continue
		}
		rounds := st.Rounds
		if rounds == 0 {
			rounds = 1
		}
		total += machine.ModelDataParallel(st.Time, rounds, p)
	}
	total += ModelRecur(res, machine, p)
	return total
}

// ModelRecur models only the recursive FW-BW phase on p threads.
func ModelRecur(res *scc.Result, machine schedsim.MachineModel, p int) time.Duration {
	if len(res.TaskTrace) == 0 {
		// No recorded tasks (phase 2 was empty, or tracing was off):
		// fall back to the measured single-worker time as a serial
		// phase.
		return res.Phases[scc.PhaseRecurFWBW].Time
	}
	tasks := make([]schedsim.Task, len(res.TaskTrace))
	for i, t := range res.TaskTrace {
		tasks[i] = schedsim.Task{Parent: t.Parent, Duration: t.Duration}
	}
	return schedsim.SimulateTasks(tasks, machine, p)
}

// FormatFigure6 renders one dataset's speedup table.
func FormatFigure6(s SpeedupSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s, Tarjan = %v)\n", s.Dataset, s.Mode, s.TarjanTime.Round(time.Microsecond))
	names := make([]string, 0, len(s.Series))
	for name := range s.Series {
		names = append(names, name)
	}
	sortStringsStable(names)
	fmt.Fprintf(&b, "%-9s", "threads")
	if len(names) > 0 {
		for _, p := range s.Series[names[0]] {
			fmt.Fprintf(&b, " %7d", p.Threads)
		}
	}
	fmt.Fprintln(&b)
	for _, name := range names {
		fmt.Fprintf(&b, "%-9s", name)
		for _, p := range s.Series[name] {
			fmt.Fprintf(&b, " %6.2fx", p.Speedup)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// BreakdownRow is one bar of Figure 7: per-phase execution times for
// one algorithm at one thread count.
type BreakdownRow struct {
	Algorithm string
	Threads   int
	Phases    [scc.NumPhases]time.Duration
	Total     time.Duration
}

// Figure7 produces the execution-time breakdown sweep for one dataset.
func Figure7(d Dataset, scale float64, threads []int, mode Mode, machine schedsim.MachineModel, seed int64) []BreakdownRow {
	g := d.Build(scale)
	var rows []BreakdownRow
	for _, alg := range sortedAlgs() {
		switch mode {
		case Modeled:
			res := instrumentedRun(g, alg, seed)
			for _, p := range threads {
				row := BreakdownRow{Algorithm: alg.String(), Threads: p}
				for ph := scc.Phase(0); ph < scc.NumPhases; ph++ {
					st := res.Phases[ph]
					if st.Time == 0 {
						continue
					}
					if ph == scc.PhaseRecurFWBW {
						row.Phases[ph] = ModelRecur(res, machine, p)
					} else {
						rounds := st.Rounds
						if rounds == 0 {
							rounds = 1
						}
						row.Phases[ph] = machine.ModelDataParallel(st.Time, rounds, p)
					}
					row.Total += row.Phases[ph]
				}
				rows = append(rows, row)
			}
		case Measured:
			for _, p := range threads {
				res := detect(g, scc.Options{Algorithm: alg, Workers: p, Seed: seed})
				row := BreakdownRow{Algorithm: alg.String(), Threads: p}
				for ph := scc.Phase(0); ph < scc.NumPhases; ph++ {
					row.Phases[ph] = res.Phases[ph].Time
					row.Total += res.Phases[ph].Time
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// FormatFigure7 renders the breakdown rows.
func FormatFigure7(dataset string, rows []BreakdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s execution-time breakdown (ms)\n", dataset)
	fmt.Fprintf(&b, "%-9s %7s", "alg", "thr")
	for ph := scc.Phase(0); ph < scc.NumPhases; ph++ {
		fmt.Fprintf(&b, " %11s", ph)
	}
	fmt.Fprintf(&b, " %11s\n", "Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %7d", r.Algorithm, r.Threads)
		for _, t := range r.Phases {
			fmt.Fprintf(&b, " %11.3f", float64(t)/float64(time.Millisecond))
		}
		fmt.Fprintf(&b, " %11.3f\n", float64(r.Total)/float64(time.Millisecond))
	}
	return b.String()
}

// GeoMeanSpeedup returns the geometric-mean speedup at the given
// thread count across series (the paper reports 14.05x at 32 threads
// excluding CA-road).
func GeoMeanSpeedup(series []SpeedupSeries, alg string, threads int, exclude ...string) float64 {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	prod, n := 1.0, 0
	for _, s := range series {
		if skip[s.Dataset] {
			continue
		}
		for _, p := range s.Series[alg] {
			if p.Threads == threads {
				prod *= p.Speedup
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1.0/float64(n))
}
