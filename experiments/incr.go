package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/graph"
	"repro/internal/incr"
	"repro/scc"
)

// IncrBenchConfig configures the incremental-maintenance sweep behind
// the "incr" section of BENCH_serve.json: classified update batches
// applied through incr.Maintainer, timed against the from-scratch
// detect → condense rebuild they replace on the serving path.
type IncrBenchConfig struct {
	// Dataset is the suite graph to maintain (default "flickr").
	Dataset string
	// Scale is the dataset scale factor.
	Scale float64
	// Workers is the detection worker count (0 = GOMAXPROCS).
	Workers int
	// Batches is the number of update batches per mix (default 32).
	Batches int
	// BatchSize is the number of updates per batch (default 16).
	BatchSize int
	// Seed drives the update mixes and pivot selection.
	Seed int64
}

func (c IncrBenchConfig) withDefaults() IncrBenchConfig {
	if c.Dataset == "" {
		c.Dataset = "flickr"
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Batches <= 0 {
		c.Batches = 32
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// IncrMix is one update mix's measured outcome: per-batch incremental
// cost against the full-rebuild baseline, the classification counts
// the mix exercised, and whether the maintained labeling diverged
// from a from-scratch run over the final edge set (the zero-tolerance
// gate).
type IncrMix struct {
	Name    string `json:"name"`
	Batches int    `json:"batches"`
	Updates int    `json:"updates"`

	// MeanBatchUS / MaxBatchUS are per-Apply wall costs; Speedup is
	// FullDetectUS (the report-level baseline) over MeanBatchUS.
	MeanBatchUS int64   `json:"mean_batch_us"`
	MaxBatchUS  int64   `json:"max_batch_us"`
	Speedup     float64 `json:"speedup"`

	IntraInserts int64 `json:"intra_inserts"`
	DagInserts   int64 `json:"dag_inserts"`
	CycleMerges  int64 `json:"cycle_merges"`
	NoopDeletes  int64 `json:"noop_deletes"`
	DagDeletes   int64 `json:"dag_deletes"`
	Partials     int64 `json:"partials"`
	Noops        int64 `json:"noops"`

	// Diverged reports whether the maintained labeling disagreed with
	// a from-scratch detection over the final edge set. Must be false.
	Diverged bool `json:"diverged"`
}

// IncrReport is the "incr" section of BENCH_serve.json.
type IncrReport struct {
	Dataset   string  `json:"dataset"`
	Nodes     int     `json:"nodes"`
	Edges     int64   `json:"edges"`
	Scale     float64 `json:"scale"`
	Workers   int     `json:"workers"`
	Seed      int64   `json:"seed"`
	GoVersion string  `json:"go_version"`

	// FullDetectUS is the baseline: one detect → condense over the
	// base graph (minimum of three runs), the cost every update batch
	// paid before incremental maintenance.
	FullDetectUS int64 `json:"full_detect_us"`

	Mixes []IncrMix `json:"mixes"`
}

// Mix returns the named mix row, or nil.
func (r *IncrReport) Mix(name string) *IncrMix {
	for i := range r.Mixes {
		if r.Mixes[i].Name == name {
			return &r.Mixes[i]
		}
	}
	return nil
}

// IncrSweep measures the three classified update mixes — intra-SCC
// insert-heavy, cycle-merge-heavy, delete-heavy — against the full
// rebuild baseline on one dataset.
func IncrSweep(cfg IncrBenchConfig) (IncrReport, error) {
	cfg = cfg.withDefaults()
	d, err := Find(cfg.Dataset)
	if err != nil {
		return IncrReport{}, err
	}
	g := d.Build(cfg.Scale)
	ctx := context.Background()

	eng, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: cfg.Workers, Seed: cfg.Seed})
	if err != nil {
		return IncrReport{}, err
	}
	defer eng.Close()
	detect := func(ctx context.Context, g *graph.Graph) ([]int32, error) {
		res, err := eng.Detect(ctx, g)
		if err != nil {
			return nil, err
		}
		return append([]int32(nil), res.Comp...), nil
	}
	build := func(ctx context.Context, g *graph.Graph) (*scc.Condensed, error) {
		comp, err := detect(ctx, g)
		if err != nil {
			return nil, err
		}
		return scc.Condense(g, comp)
	}

	rep := IncrReport{
		Dataset: cfg.Dataset, Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Scale: cfg.Scale, Workers: cfg.Workers, Seed: cfg.Seed,
		GoVersion: runtime.Version(),
	}

	// Baseline: the from-scratch epoch cost each batch used to pay
	// (minimum of three runs).
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		if _, err := build(ctx, g); err != nil {
			return rep, fmt.Errorf("incr baseline: %w", err)
		}
		if us := time.Since(t0).Microseconds(); rep.FullDetectUS == 0 || us < rep.FullDetectUS {
			rep.FullDetectUS = us
		}
	}

	for i, name := range []string{"intra", "cycle", "delete"} {
		row, err := runIncrMix(ctx, cfg, g, detect, build, name, cfg.Seed+int64(i)*7919)
		if err != nil {
			return rep, fmt.Errorf("incr mix %s: %w", name, err)
		}
		if row.MeanBatchUS > 0 {
			row.Speedup = float64(rep.FullDetectUS) / float64(row.MeanBatchUS)
		}
		rep.Mixes = append(rep.Mixes, row)
	}
	return rep, nil
}

// runIncrMix seeds a fresh maintainer on g, applies cfg.Batches
// batches of the named mix, and verifies the final labeling against a
// from-scratch detection over the materialized edge set.
func runIncrMix(ctx context.Context, cfg IncrBenchConfig, g *graph.Graph,
	detect incr.DetectFunc, build incr.BuildFunc, name string, seed int64) (IncrMix, error) {
	row := IncrMix{Name: name, Batches: cfg.Batches}
	m := incr.New(g, detect)
	if _, _, err := m.FullBuild(ctx, nil, build); err != nil {
		return row, err
	}
	rng := rand.New(rand.NewSource(seed))
	var total incr.Stats
	var sumUS int64
	for b := 0; b < cfg.Batches; b++ {
		batch := makeIncrBatch(rng, m, g, name, cfg.BatchSize)
		row.Updates += len(batch)
		t0 := time.Now()
		_, st, err := m.Apply(ctx, batch)
		if err != nil {
			return row, err
		}
		us := time.Since(t0).Microseconds()
		sumUS += us
		if us > row.MaxBatchUS {
			row.MaxBatchUS = us
		}
		total.Add(st)
	}
	if cfg.Batches > 0 {
		row.MeanBatchUS = sumUS / int64(cfg.Batches)
	}
	row.IntraInserts = total.IntraInserts
	row.DagInserts = total.DagInserts
	row.CycleMerges = total.CycleMerges
	row.NoopDeletes = total.NoopDeletes
	row.DagDeletes = total.DagDeletes
	row.Partials = total.Partials
	row.Noops = total.Noops

	// Zero-divergence gate: the maintained labeling must match a
	// from-scratch detection over the exact final edge set.
	final := m.Materialize()
	comp, err := detect(ctx, final)
	if err != nil {
		return row, err
	}
	row.Diverged = !incr.LabelsEquivalent(m.Cond().NodeComp, comp)
	return row, nil
}

// makeIncrBatch builds one batch of the named mix against the
// maintainer's current labeling:
//
//   - intra: inserts between members of the largest SCC — the
//     label-no-op fast path that dominates small-world update streams;
//   - cycle: insert pairs u→v, v→u between random nodes, forcing
//     condensation-path collapses (with DAG-edge inserts as the setup
//     half of each pair);
//   - delete: deletions of existing inter-SCC edges (DAG-edge or
//     residual-no-op fast paths) padded with absent-edge deletes.
func makeIncrBatch(rng *rand.Rand, m *incr.Maintainer, g *graph.Graph, name string, size int) []graph.Update {
	cond := m.Cond()
	n := m.NumNodes()
	batch := make([]graph.Update, 0, size)
	switch name {
	case "intra":
		giant := giantMembers(cond, 4096)
		for len(batch) < size {
			u := giant[rng.Intn(len(giant))]
			v := giant[rng.Intn(len(giant))]
			batch = append(batch, graph.Update{Op: graph.EdgeInsert, From: u, To: v})
		}
	case "cycle":
		for len(batch)+2 <= size {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			batch = append(batch,
				graph.Update{Op: graph.EdgeInsert, From: u, To: v},
				graph.Update{Op: graph.EdgeInsert, From: v, To: u})
		}
	case "delete":
		// Existing edges whose endpoints live in different SCCs: their
		// deletion can never split a component, so every one rides a
		// fast path (residual no-op or DAG-edge removal).
		for tries := 0; len(batch) < size && tries < size*64; tries++ {
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			out := g.Out(u)
			if len(out) == 0 {
				continue
			}
			v := out[rng.Intn(len(out))]
			if cond.NodeComp[u] == cond.NodeComp[v] {
				continue
			}
			batch = append(batch, graph.Update{Op: graph.EdgeDelete, From: u, To: v})
		}
		for len(batch) < size {
			// Pad with absent-edge deletes (classified no-ops).
			u := graph.NodeID(rng.Intn(n))
			batch = append(batch, graph.Update{Op: graph.EdgeDelete, From: u, To: u})
		}
	default:
		panic("unknown incr mix " + name)
	}
	return batch
}

// giantMembers samples up to limit members of the largest component.
func giantMembers(cond *scc.Condensed, limit int) []graph.NodeID {
	var giant int32
	for c := range cond.Sizes {
		if cond.Sizes[c] > cond.Sizes[giant] {
			giant = int32(c)
		}
	}
	members := make([]graph.NodeID, 0, limit)
	for v, c := range cond.NodeComp {
		if c == giant {
			members = append(members, graph.NodeID(v))
			if len(members) == limit {
				break
			}
		}
	}
	return members
}

// FormatIncr renders the incremental-maintenance report for stdout.
func FormatIncr(r IncrReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Incremental SCC maintenance — %s scale %.2f (%d nodes, %d edges, %d workers)\n",
		r.Dataset, r.Scale, r.Nodes, r.Edges, r.Workers)
	fmt.Fprintf(&sb, "full rebuild baseline: %d µs\n", r.FullDetectUS)
	fmt.Fprintf(&sb, "%-8s %8s %9s %12s %12s %9s %s\n",
		"mix", "batches", "updates", "mean µs/ba", "max µs/ba", "speedup", "classes (intra/dag+/merge/noop-/dag-/part/noop)")
	for _, m := range r.Mixes {
		mark := ""
		if m.Diverged {
			mark = "  DIVERGED"
		}
		fmt.Fprintf(&sb, "%-8s %8d %9d %12d %12d %8.1fx %d/%d/%d/%d/%d/%d/%d%s\n",
			m.Name, m.Batches, m.Updates, m.MeanBatchUS, m.MaxBatchUS, m.Speedup,
			m.IntraInserts, m.DagInserts, m.CycleMerges, m.NoopDeletes, m.DagDeletes, m.Partials, m.Noops, mark)
	}
	return sb.String()
}
