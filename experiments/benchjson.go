package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/scc"
)

// BenchConfig configures a machine-readable benchmark sweep over the
// dataset suite (the data behind BENCH_scc.json).
type BenchConfig struct {
	// Datasets restricts the sweep; nil runs the full suite.
	Datasets []string
	// Scale is the dataset scale factor.
	Scale float64
	// Workers is the Detect worker count (0 = GOMAXPROCS).
	Workers int
	// Warmup runs are executed and discarded before measuring (page
	// the graph in, grow the heap, JIT the branch predictors).
	Warmup int
	// Reps is the number of measured repetitions (>= 1).
	Reps int
	// Seed drives pivot selection.
	Seed int64
	// Kernels selects the trim/WCC kernel set (scc.KernelsWorklist is
	// the zero value and the default).
	Kernels scc.Kernels
	// DirOptBFS enables the direction-optimizing phase-1 BFS so the
	// sweep exercises the bitmap frontier (visible as BitmapLevels in
	// the row metrics). Off by default: on this suite's small-diameter
	// datasets the queue-only sweep wins — the bottom-up flip saves
	// edge scans only for the couple of levels where the frontier is a
	// large fraction of the partition, and the per-level bitmap reset
	// plus the remaining-list rebuild cost more than those scans at
	// GOMAXPROCS-scale worker counts. A BitmapLevels of 0 in
	// BENCH_scc.json therefore means "not requested", not dead code;
	// internal/bfs's regression test keeps the opt-in path honest.
	DirOptBFS bool
}

func (c BenchConfig) withDefaults() BenchConfig {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Reps < 1 {
		c.Reps = 1
	}
	if len(c.Datasets) == 0 {
		c.Datasets = Names()
	}
	return c
}

// BenchRow is one dataset's measured result.
type BenchRow struct {
	Dataset string `json:"dataset"`
	Nodes   int    `json:"nodes"`
	Edges   int64  `json:"edges"`

	// MeanNs and StddevNs summarize the measured repetitions.
	MeanNs   float64 `json:"mean_ns"`
	StddevNs float64 `json:"stddev_ns"`
	MinNs    int64   `json:"min_ns"`

	// AllocsPerOp and BytesPerOp are runtime.MemStats deltas averaged
	// over the measured repetitions.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`

	NumSCCs int64 `json:"num_sccs"`

	// Metrics is the final repetition's per-phase counter snapshot.
	Metrics scc.MetricsSnapshot `json:"metrics"`
}

// BenchReport is the top-level BENCH_scc.json document.
type BenchReport struct {
	Benchmark string     `json:"benchmark"`
	Algorithm string     `json:"algorithm"`
	Kernels   string     `json:"kernels"`
	Scale     float64    `json:"scale"`
	Workers   int        `json:"workers"`
	Warmup    int        `json:"warmup"`
	Reps      int        `json:"reps"`
	Seed      int64      `json:"seed"`
	GoVersion string     `json:"go_version"`
	Rows      []BenchRow `json:"rows"`

	// Engine is the engine-amortization section (sccbench -exp engine).
	// Each experiment rewrites only its own section, preserving the
	// others' from the existing file.
	Engine *EngineReport `json:"engine,omitempty"`

	// MultiPivot is the kernel-comparison section (sccbench -exp
	// multipivot): worklist vs multi-pivot like-vs-like rows over the
	// high-diameter stress set, gated by benchgate -multipivot.
	MultiPivot *MultiPivotReport `json:"multipivot,omitempty"`
}

// BenchSweep measures Method2 over the configured datasets and
// returns the report. Each dataset gets cfg.Warmup discarded runs and
// cfg.Reps measured runs; wall time is aggregated as mean/stddev/min
// and allocation counts as per-op MemStats deltas.
func BenchSweep(cfg BenchConfig) (BenchReport, error) {
	cfg = cfg.withDefaults()
	rep := BenchReport{
		Benchmark: "Figure6Method2",
		Algorithm: scc.Method2.String(),
		Kernels:   cfg.Kernels.String(),
		Scale:     cfg.Scale,
		Workers:   cfg.Workers,
		Warmup:    cfg.Warmup,
		Reps:      cfg.Reps,
		Seed:      cfg.Seed,
		GoVersion: runtime.Version(),
	}
	for _, name := range cfg.Datasets {
		d, err := Find(name)
		if err != nil {
			return rep, err
		}
		g := d.Build(cfg.Scale)
		opts := scc.Options{
			Algorithm: scc.Method2, Workers: cfg.Workers, Seed: cfg.Seed,
			Kernels: cfg.Kernels, DirOptBFS: cfg.DirOptBFS,
		}
		row := BenchRow{Dataset: name, Nodes: g.NumNodes(), Edges: g.NumEdges()}

		for i := 0; i < cfg.Warmup; i++ {
			if _, err := scc.Detect(g, opts); err != nil {
				return rep, fmt.Errorf("%s warmup: %w", name, err)
			}
		}
		var (
			sum, sumSq          float64
			minNs               = int64(math.MaxInt64)
			allocsSum, bytesSum uint64
			before, after       runtime.MemStats
		)
		for i := 0; i < cfg.Reps; i++ {
			runtime.ReadMemStats(&before)
			t0 := time.Now()
			res, err := scc.Detect(g, opts)
			elapsed := time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&after)
			if err != nil {
				return rep, fmt.Errorf("%s rep %d: %w", name, i, err)
			}
			sum += float64(elapsed)
			sumSq += float64(elapsed) * float64(elapsed)
			if elapsed < minNs {
				minNs = elapsed
			}
			allocsSum += after.Mallocs - before.Mallocs
			bytesSum += after.TotalAlloc - before.TotalAlloc
			row.NumSCCs = res.NumSCCs
			row.Metrics = res.Metrics
		}
		n := float64(cfg.Reps)
		row.MeanNs = sum / n
		if cfg.Reps > 1 {
			// Sample stddev; clamp tiny negative variance from rounding.
			v := (sumSq - sum*sum/n) / (n - 1)
			if v > 0 {
				row.StddevNs = math.Sqrt(v)
			}
		}
		row.MinNs = minNs
		row.AllocsPerOp = allocsSum / uint64(cfg.Reps)
		row.BytesPerOp = bytesSum / uint64(cfg.Reps)
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// ReadBenchJSON loads an existing report, for merging a freshly
// measured section into the other sections' previous values.
func ReadBenchJSON(path string) (BenchReport, error) {
	var rep BenchReport
	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()
	err = json.NewDecoder(f).Decode(&rep)
	return rep, err
}

// WriteBenchJSON writes the report as indented JSON.
func WriteBenchJSON(w io.Writer, rep BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FormatBench renders the report as an aligned text table.
func FormatBench(rep BenchReport) string {
	out := fmt.Sprintf("Method2 bench (scale %.2g, %d warmup, %d reps, workers %d, kernels %s):\n",
		rep.Scale, rep.Warmup, rep.Reps, rep.Workers, rep.Kernels)
	out += fmt.Sprintf("%-10s %10s %12s %12s %12s %10s %8s\n",
		"dataset", "nodes", "mean", "stddev", "allocs/op", "B/op", "SCCs")
	for _, r := range rep.Rows {
		out += fmt.Sprintf("%-10s %10d %12s %12s %12d %10d %8d\n",
			r.Dataset, r.Nodes,
			time.Duration(r.MeanNs).Round(time.Microsecond),
			time.Duration(r.StddevNs).Round(time.Microsecond),
			r.AllocsPerOp, r.BytesPerOp, r.NumSCCs)
	}
	return out
}
