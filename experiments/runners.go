package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/graph"
	"repro/scc"
)

// Table1Row is one dataset's row of Table 1: measured analog
// statistics next to the paper's published numbers.
type Table1Row struct {
	Name        string
	Description string
	Star        bool
	Nodes       int
	Edges       int64
	LargestSCC  int64
	NumSCCs     int64
	Diameter    int
	Paper       PaperNumbers
}

// Table1 generates every dataset at the given scale and measures the
// columns of the paper's Table 1 (node/edge counts, largest SCC,
// estimated diameter). diameterSamples controls the sampling BFS count
// (the paper also estimates diameters by sampling); 0 skips it.
func Table1(scale float64, diameterSamples int) []Table1Row {
	var rows []Table1Row
	for _, d := range Suite() {
		g := d.Build(scale)
		res, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
		if err != nil {
			panic(err) // cannot happen: valid algorithm, non-nil graph
		}
		row := Table1Row{
			Name:        d.Name,
			Description: d.Description,
			Star:        d.Star,
			Nodes:       g.NumNodes(),
			Edges:       g.NumEdges(),
			LargestSCC:  res.LargestSCC(),
			NumSCCs:     res.NumSCCs,
			Paper:       d.Paper,
		}
		if diameterSamples > 0 {
			row.Diameter = graph.EstimateDiameter(g, diameterSamples, 42)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders Table 1 rows as the paper lays them out, with
// the paper's giant-SCC fraction alongside the analog's for shape
// comparison.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %10s %12s %12s %6s %9s %9s\n",
		"Name", "Nodes", "Edges", "LargestSCC", "Diam", "giant%", "paper%")
	for _, r := range rows {
		name := r.Name
		if r.Star {
			name += "*"
		}
		fmt.Fprintf(&b, "%-9s %10d %12d %12d %6d %8.1f%% %8.1f%%\n",
			name, r.Nodes, r.Edges, r.LargestSCC, r.Diameter,
			100*float64(r.LargestSCC)/float64(r.Nodes),
			100*r.Paper.GiantFraction())
	}
	return b.String()
}

// SizeDist is one dataset's SCC-size distribution (Figures 2 and 9):
// power-of-two buckets of component sizes.
type SizeDist struct {
	Dataset string
	// Buckets[i] counts SCCs with size in [2^i, 2^(i+1)).
	Buckets []int64
	// Largest is the giant SCC's size; Trivial counts size-1 SCCs.
	Largest, Trivial, NumSCCs int64
	Nodes                     int
}

// SizeDistribution decomposes the dataset and returns its SCC-size
// distribution.
func SizeDistribution(d Dataset, scale float64) SizeDist {
	g := d.Build(scale)
	res, err := scc.Detect(g, scc.Options{Algorithm: scc.Method2, Seed: 1})
	if err != nil {
		panic(err)
	}
	return SizeDist{
		Dataset: d.Name,
		Buckets: scc.LogSizeHistogram(res.Comp),
		Largest: res.LargestSCC(),
		Trivial: res.TrivialSCCs(),
		NumSCCs: res.NumSCCs,
		Nodes:   g.NumNodes(),
	}
}

// FormatSizeDist renders one distribution as an ASCII log-log
// histogram.
func FormatSizeDist(sd SizeDist) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d sccs=%d largest=%d size1=%d\n",
		sd.Dataset, sd.Nodes, sd.NumSCCs, sd.Largest, sd.Trivial)
	maxCount := int64(1)
	for _, c := range sd.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range sd.Buckets {
		if c == 0 {
			continue
		}
		bar := int(40 * float64(len(fmt.Sprintf("%d", c))) / float64(len(fmt.Sprintf("%d", maxCount))))
		if bar < 1 {
			bar = 1
		}
		fmt.Fprintf(&b, "  size 2^%-2d %10d %s\n", i, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// TaskLogResult reproduces the §3.3 execution log: the first task
// executions of the recursive FW-BW phase under Method 1, plus the
// queue-depth statistics of Methods 1 and 2.
type TaskLogResult struct {
	Dataset string
	// Records is the Method-1 log in the paper's "SCC FW BW Remain"
	// format.
	Records []scc.TaskRecord
	// PeakDepthM1 and PeakDepthM2 are the maximum work-queue depths:
	// the paper reports ≈6 for Method 1 and ≈10,000 for Method 2 on
	// Flickr.
	PeakDepthM1, PeakDepthM2 int64
	// TasksM2 is the number of tasks seeding Method 2's phase 2.
	TasksM2 int
}

// TaskLog runs Methods 1 and 2 on the dataset and captures the §3.3
// logs.
func TaskLog(d Dataset, scale float64, seed int64, records int) TaskLogResult {
	g := d.Build(scale)
	r1, err := scc.Detect(g, scc.Options{Algorithm: scc.Method1, Seed: seed, Workers: 1, TraceTasks: records})
	if err != nil {
		panic(err)
	}
	r2, err := scc.Detect(g, scc.Options{Algorithm: scc.Method2, Seed: seed, Workers: 1})
	if err != nil {
		panic(err)
	}
	return TaskLogResult{
		Dataset:     d.Name,
		Records:     r1.TaskLog,
		PeakDepthM1: r1.Queue.PeakReady,
		PeakDepthM2: r2.Queue.PeakReady,
		TasksM2:     r2.InitialTasks,
	}
}

// FormatTaskLog renders the §3.3 log.
func FormatTaskLog(tl TaskLogResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Method 1 recursive FW-BW task log on %s (first %d tasks):\n", tl.Dataset, len(tl.Records))
	fmt.Fprintf(&b, "%8s %8s %8s %8s\n", "SCC", "FW", "BW", "Remain")
	for _, r := range tl.Records {
		fmt.Fprintf(&b, "%8d %8d %8d %8d\n", r.SCC, r.FW, r.BW, r.Remain)
	}
	fmt.Fprintf(&b, "max queue depth: Method1=%d Method2=%d (Method2 seeds %d WCC tasks)\n",
		tl.PeakDepthM1, tl.PeakDepthM2, tl.TasksM2)
	return b.String()
}

// FractionRow is one dataset's bar of Figure 8: the fraction of nodes
// whose SCC is identified in each phase of Method 2.
type FractionRow struct {
	Dataset   string
	Fractions [scc.NumPhases]float64
}

// Figure8 measures the per-phase node attribution of Method 2 on every
// dataset.
func Figure8(scale float64, seed int64) []FractionRow {
	var rows []FractionRow
	for _, d := range Suite() {
		g := d.Build(scale)
		res, err := scc.Detect(g, scc.Options{Algorithm: scc.Method2, Seed: seed})
		if err != nil {
			panic(err)
		}
		var row FractionRow
		row.Dataset = d.Name
		n := float64(g.NumNodes())
		for p := scc.Phase(0); p < scc.NumPhases; p++ {
			row.Fractions[p] = float64(res.Phases[p].Nodes) / n
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatFigure8 renders the phase-attribution table.
func FormatFigure8(rows []FractionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s", "Dataset")
	for p := scc.Phase(0); p < scc.NumPhases; p++ {
		fmt.Fprintf(&b, " %11s", p)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s", r.Dataset)
		for _, f := range r.Fractions {
			fmt.Fprintf(&b, " %10.1f%%", 100*f)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// measure runs fn `reps` times and returns the fastest wall time — the
// standard way to suppress scheduling noise in microbenchmarks.
func measure(reps int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// sortedAlgs returns the parallel algorithms in presentation order.
func sortedAlgs() []scc.Algorithm {
	return []scc.Algorithm{scc.Baseline, scc.Method1, scc.Method2}
}

// sortStringsStable sorts strings ascending (tiny helper used by
// formatters that iterate maps).
func sortStringsStable(s []string) { sort.Strings(s) }
