package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/scc"
)

// ServeBenchConfig configures the serving load harness behind
// BENCH_serve.json: an in-process sccserve (internal/server on an
// httptest listener) driven by concurrent HTTP clients through four
// scenarios — steady state, forced overload, chaos-sabotaged rebuild,
// and graceful drain.
type ServeBenchConfig struct {
	// Dataset is the suite graph to serve (default "flickr").
	Dataset string
	// Scale is the dataset scale factor.
	Scale float64
	// Workers is the detection worker count (0 = GOMAXPROCS).
	Workers int
	// Clients is the number of concurrent load generators (default 16).
	Clients int
	// Duration is the per-scenario load window (default 800ms).
	Duration time.Duration
	// Seed drives pivot selection and the clients' query mix.
	Seed int64
}

func (c ServeBenchConfig) withDefaults() ServeBenchConfig {
	if c.Dataset == "" {
		c.Dataset = "flickr"
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Duration <= 0 {
		c.Duration = 800 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ServeScenario is one scenario's measured outcome.
type ServeScenario struct {
	Name     string `json:"name"`
	Requests int64  `json:"requests"`
	OK       int64  `json:"ok"`
	// Shed429 counts load-shedding responses (429); Rejected503
	// counts drain rejections. Err5xx counts every other 5xx — the
	// robustness gates hold it at zero in all scenarios.
	Shed429     int64 `json:"shed_429"`
	Rejected503 int64 `json:"rejected_503"`
	Err4xx      int64 `json:"err_4xx"`
	Err5xx      int64 `json:"err_5xx"`

	QPS   float64 `json:"qps"`
	P50US int64   `json:"p50_us"`
	P99US int64   `json:"p99_us"`
	MaxUS int64   `json:"max_us"`

	EpochStart      int64 `json:"epoch_start"`
	EpochEnd        int64 `json:"epoch_end"`
	Rebuilds        int64 `json:"rebuilds"`
	RebuildFailures int64 `json:"rebuild_failures"`

	// DrainOK is set by the drain scenario: the drain completed inside
	// its bound with every accepted request finished.
	DrainOK *bool `json:"drain_ok,omitempty"`
}

// ServeReport is the top-level BENCH_serve.json document.
type ServeReport struct {
	Dataset   string          `json:"dataset"`
	Nodes     int             `json:"nodes"`
	Edges     int64           `json:"edges"`
	Scale     float64         `json:"scale"`
	Workers   int             `json:"workers"`
	Clients   int             `json:"clients"`
	Seed      int64           `json:"seed"`
	GoVersion string          `json:"go_version"`
	Scenarios []ServeScenario `json:"scenarios"`

	// Recover is the crash-recovery matrix written by `sccbench -exp
	// recover` and gated by `benchgate -recover`; nil until that
	// experiment has run. Scenario and recover runs merge into the
	// same document, each preserving the other's section.
	Recover *RecoverReport `json:"recover,omitempty"`

	// Incr is the incremental-maintenance sweep written by `sccbench
	// -exp incr` and gated by `benchgate -incr`; nil until that
	// experiment has run. Like Recover, it merges section-preservingly
	// into the same document.
	Incr *IncrReport `json:"incr,omitempty"`
}

// Scenario returns the named scenario row, or nil.
func (r *ServeReport) Scenario(name string) *ServeScenario {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// serveRun is one scenario server plus its HTTP front end.
type serveRun struct {
	srv *server.Server
	ts  *httptest.Server
}

func startServe(cfg ServeBenchConfig, scfg server.Config) (*serveRun, error) {
	d, err := Find(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	g := d.Build(cfg.Scale)
	scfg.Options = scc.Options{Algorithm: scc.Method2, Workers: cfg.Workers, Seed: cfg.Seed}
	if scfg.Logf == nil {
		scfg.Logf = func(string, ...any) {}
	}
	srv, err := server.New(scfg, g)
	if err != nil {
		return nil, err
	}
	return &serveRun{srv: srv, ts: httptest.NewServer(srv.Handler())}, nil
}

func (r *serveRun) stop() {
	r.ts.Close()
	r.srv.Close()
}

// loadResult aggregates the client side of one scenario.
type loadResult struct {
	requests, ok, shed, rejected, err4xx, err5xx atomic.Int64
	mu                                           sync.Mutex
	latencies                                    []int64 // µs, 2xx only
	elapsed                                      time.Duration
}

// drive hammers the query endpoints from cfg.Clients goroutines for
// cfg.Duration. Each client randomizes over componentof / same /
// reachable; with adhoc set, every fourth request is instead a POST
// /scc carrying a graph large enough that each detection holds a slot
// for milliseconds. Ad-hoc detections also serialize on the pinned
// engine, so concurrent ones collide through the scc.ErrEngineBusy →
// 429 mapping; together the two paths make shedding deterministic
// under overload no matter how fast the pure query handlers are.
func drive(cfg ServeBenchConfig, run *serveRun, res *loadResult, adhoc bool) {
	n := run.srv.Snapshot().Nodes
	var adhocBody string
	if adhoc {
		var sb strings.Builder
		const ring = 20000 // one big cycle: a single non-trivial SCC
		for i := 0; i < ring; i++ {
			fmt.Fprintf(&sb, "%d %d\n", i, (i+1)%ring)
		}
		adhocBody = sb.String()
	}
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConns: cfg.Clients * 2, MaxIdleConnsPerHost: cfg.Clients * 2},
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			local := make([]int64, 0, 4096)
			for {
				select {
				case <-stop:
					res.mu.Lock()
					res.latencies = append(res.latencies, local...)
					res.mu.Unlock()
					return
				default:
				}
				var (
					resp *http.Response
					err  error
					q0   = time.Now()
				)
				if adhoc && rng.Intn(4) == 0 {
					resp, err = client.Post(run.ts.URL+"/scc", "text/plain",
						strings.NewReader(adhocBody))
				} else {
					var url string
					switch rng.Intn(3) {
					case 0:
						url = fmt.Sprintf("%s/componentof?node=%d", run.ts.URL, rng.Intn(n))
					case 1:
						url = fmt.Sprintf("%s/same?u=%d&v=%d", run.ts.URL, rng.Intn(n), rng.Intn(n))
					default:
						url = fmt.Sprintf("%s/reachable?from=%d&to=%d", run.ts.URL, rng.Intn(n), rng.Intn(n))
					}
					resp, err = client.Get(url)
				}
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat := time.Since(q0).Microseconds()
				res.requests.Add(1)
				switch {
				case resp.StatusCode < 300:
					res.ok.Add(1)
					local = append(local, lat)
				case resp.StatusCode == http.StatusTooManyRequests:
					res.shed.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					res.rejected.Add(1)
				case resp.StatusCode < 500:
					res.err4xx.Add(1)
				default:
					res.err5xx.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	res.elapsed = time.Since(t0)
	client.CloseIdleConnections()
}

// finish converts a loadResult plus server counters into the scenario
// row.
func finish(name string, run *serveRun, res *loadResult, epochStart int64) ServeScenario {
	row := ServeScenario{
		Name:        name,
		Requests:    res.requests.Load(),
		OK:          res.ok.Load(),
		Shed429:     res.shed.Load(),
		Rejected503: res.rejected.Load(),
		Err4xx:      res.err4xx.Load(),
		Err5xx:      res.err5xx.Load(),
		EpochStart:  epochStart,
		EpochEnd:    run.srv.Snapshot().Epoch,
	}
	ctr := run.srv.Counters().Snapshot()
	row.Rebuilds = ctr.Rebuilds
	row.RebuildFailures = ctr.RebuildFailures
	if res.elapsed > 0 {
		row.QPS = float64(row.OK) / res.elapsed.Seconds()
	}
	lats := res.latencies
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		row.P50US = lats[len(lats)/2]
		row.P99US = lats[len(lats)*99/100]
		row.MaxUS = lats[len(lats)-1]
	}
	return row
}

// ServeSweep runs the four serving scenarios, each on a fresh server
// over the configured dataset, and returns the report.
func ServeSweep(cfg ServeBenchConfig) (ServeReport, error) {
	cfg = cfg.withDefaults()
	rep := ServeReport{
		Dataset:   cfg.Dataset,
		Scale:     cfg.Scale,
		Workers:   cfg.Workers,
		Clients:   cfg.Clients,
		Seed:      cfg.Seed,
		GoVersion: runtime.Version(),
	}

	// steady: generous caps, pure query load. The QPS/latency numbers
	// that matter come from here.
	{
		run, err := startServe(cfg, server.Config{
			MaxInflight: cfg.Clients * 2,
			QueueDepth:  cfg.Clients * 4,
		})
		if err != nil {
			return rep, fmt.Errorf("serve steady: %w", err)
		}
		sn := run.srv.Snapshot()
		rep.Nodes, rep.Edges = sn.Nodes, sn.Edges
		var res loadResult
		drive(cfg, run, &res, false)
		rep.Scenarios = append(rep.Scenarios, finish("steady", run, &res, sn.Epoch))
		run.stop()
	}

	// overload: a single execution slot with a one-deep, short-wait
	// queue. A slow-trickle POST /scc upload (slowloris-shaped) claims
	// the slot before the load starts and holds it for half the window
	// by keeping its request body open, so the query load piles onto
	// the queue and has to shed — deterministically, on any core
	// count, because the hold is blocking I/O rather than a timing
	// race. The gate wants shedding (429 + Retry-After), zero 5xx.
	{
		run, err := startServe(cfg, server.Config{
			MaxInflight: 1,
			QueueDepth:  1,
			QueueWait:   time.Millisecond,
		})
		if err != nil {
			return rep, fmt.Errorf("serve overload: %w", err)
		}
		epoch := run.srv.Snapshot().Epoch
		var res loadResult
		hog := make(chan error, 1)
		pr, pw := io.Pipe()
		go func() {
			resp, err := http.Post(run.ts.URL+"/scc", "text/plain", pr)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("slot-hog /scc status %d", resp.StatusCode)
				}
			}
			hog <- err
		}()
		go func() {
			pw.Write([]byte("0 1\n1 0\n"))
			time.Sleep(cfg.Duration / 2)
			pw.Close()
		}()
		// Let the hog claim the slot before the load arrives.
		time.Sleep(10 * time.Millisecond)
		drive(cfg, run, &res, true)
		if err := <-hog; err != nil {
			run.stop()
			return rep, fmt.Errorf("serve overload: %w", err)
		}
		rep.Scenarios = append(rep.Scenarios, finish("overload", run, &res, epoch))
		run.stop()
	}

	// chaos-rebuild: queries hammer while an update triggers a rebuild
	// whose condensation is sabotaged; the retry must publish the next
	// epoch and the query path must never 5xx.
	{
		run, err := startServe(cfg, server.Config{
			MaxInflight:  cfg.Clients * 2,
			QueueDepth:   cfg.Clients * 4,
			RebuildChaos: &scc.ChaosConfig{PanicAt: map[string]int64{"condense": 1}},
			// Attempt 1 is the startup build; sabotage the update's.
			ChaosAtRebuild: 2,
		})
		if err != nil {
			return rep, fmt.Errorf("serve chaos: %w", err)
		}
		epoch := run.srv.Snapshot().Epoch
		var res loadResult
		done := make(chan error, 1)
		go func() {
			// Mid-scenario edge-batch update; wait=1 blocks until the
			// retried rebuild publishes.
			resp, err := http.Post(run.ts.URL+"/update?wait=1", "text/plain", strings.NewReader("1 0\n0 1\n"))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("update status %d", resp.StatusCode)
				}
			}
			done <- err
		}()
		drive(cfg, run, &res, false)
		if err := <-done; err != nil {
			run.stop()
			return rep, fmt.Errorf("serve chaos update: %w", err)
		}
		rep.Scenarios = append(rep.Scenarios, finish("chaos-rebuild", run, &res, epoch))
		run.stop()
	}

	// drain: begin a graceful drain mid-load; every accepted request
	// must finish inside the bound while new arrivals bounce with 503.
	{
		run, err := startServe(cfg, server.Config{
			MaxInflight: cfg.Clients * 2,
			QueueDepth:  cfg.Clients * 4,
		})
		if err != nil {
			return rep, fmt.Errorf("serve drain: %w", err)
		}
		epoch := run.srv.Snapshot().Epoch
		var res loadResult
		drainOK := make(chan bool, 1)
		go func() {
			time.Sleep(cfg.Duration / 2)
			drainOK <- run.srv.Drain(10 * time.Second)
		}()
		drive(cfg, run, &res, false)
		ok := <-drainOK
		ctr := run.srv.Counters().Snapshot()
		ok = ok && ctr.Accepted == ctr.Completed
		row := finish("drain", run, &res, epoch)
		row.DrainOK = &ok
		rep.Scenarios = append(rep.Scenarios, row)
		run.stop()
	}

	return rep, nil
}

// ReadServeJSON loads an existing serving report.
func ReadServeJSON(path string) (ServeReport, error) {
	var rep ServeReport
	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()
	err = json.NewDecoder(f).Decode(&rep)
	return rep, err
}

// WriteServeJSON writes the report as indented JSON.
func WriteServeJSON(w io.Writer, rep ServeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FormatServe renders the report as an aligned text table.
func FormatServe(rep ServeReport) string {
	out := fmt.Sprintf("serving load harness (%s: %d nodes, %d edges; %d clients):\n",
		rep.Dataset, rep.Nodes, rep.Edges, rep.Clients)
	out += fmt.Sprintf("%-14s %9s %9s %7s %7s %6s %10s %9s %9s %7s\n",
		"scenario", "requests", "qps", "shed", "503", "5xx", "p50", "p99", "epochs", "drain")
	for _, s := range rep.Scenarios {
		drain := "-"
		if s.DrainOK != nil {
			drain = fmt.Sprintf("%v", *s.DrainOK)
		}
		out += fmt.Sprintf("%-14s %9d %9.0f %7d %7d %6d %10v %9v %5d→%-3d %7s\n",
			s.Name, s.Requests, s.QPS, s.Shed429, s.Rejected503, s.Err5xx,
			time.Duration(s.P50US)*time.Microsecond,
			time.Duration(s.P99US)*time.Microsecond,
			s.EpochStart, s.EpochEnd, drain)
	}
	return out
}
