package experiments

import (
	"testing"
)

// TestEngineSweepShape runs a minimal engine sweep and checks the
// report's structure; throughput magnitudes are machine-dependent and
// asserted only to be positive.
func TestEngineSweepShape(t *testing.T) {
	rep, err := EngineSweep(EngineBenchConfig{Stream: 8, GraphScale: 3, Warmup: 1, Reps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rep.Rows))
	}
	for _, mode := range []string{"oneshot", "engine", "batch"} {
		r := rep.Row(mode)
		if r == nil {
			t.Fatalf("missing %s row", mode)
		}
		if r.RunsPerSec <= 0 || r.NsPerRun <= 0 {
			t.Fatalf("%s: non-positive throughput: %+v", mode, r)
		}
	}
	if rep.Speedup <= 0 || rep.BatchSpeedup <= 0 {
		t.Fatalf("speedups not computed: %.2f / %.2f", rep.Speedup, rep.BatchSpeedup)
	}
	if got := rep.Row("nope"); got != nil {
		t.Fatalf("Row(nope) = %+v, want nil", got)
	}
	if out := FormatEngine(rep); out == "" {
		t.Fatal("empty FormatEngine output")
	}
}

// TestEngineSweepEnginePinsAllocs asserts the warm engine's defining
// property on the stream: strictly fewer allocations per run than the
// one-shot mode (zero at the default single-worker configuration).
func TestEngineSweepEnginePinsAllocs(t *testing.T) {
	rep, err := EngineSweep(EngineBenchConfig{Stream: 16, GraphScale: 3, Warmup: 1, Reps: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o, e := rep.Row("oneshot"), rep.Row("engine")
	if e.AllocsPerRun >= o.AllocsPerRun {
		t.Fatalf("warm engine allocates %d/run vs oneshot %d/run", e.AllocsPerRun, o.AllocsPerRun)
	}
	if e.AllocsPerRun != 0 {
		t.Fatalf("warm single-worker engine allocates %d/run, want 0", e.AllocsPerRun)
	}
}
