package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/gen"
	"repro/graph"
	"repro/scc"
)

// EngineBenchConfig configures the engine-amortization experiment: a
// stream of small graphs detected back-to-back, where per-call setup
// (gang spawn, scratch growth, validation) dominates a one-shot
// Detect. The experiment measures how much a persistent scc.Engine
// amortizes away.
type EngineBenchConfig struct {
	// Workers is the fixed Detect worker count shared by every mode
	// (default 1 — on graphs this small, extra workers only add
	// dispatch latency to every mode equally).
	Workers int
	// Stream is the number of graphs per pass (default 64).
	Stream int
	// GraphScale is the RMAT scale of each stream graph: 2^scale nodes
	// (default 4 — requests small enough that per-call engine setup,
	// the cost a persistent engine amortizes, is a large fraction of a
	// one-shot Detect).
	GraphScale int
	// Warmup passes are run and discarded per mode (default 1).
	Warmup int
	// Reps is the number of measured passes per mode (default 3).
	Reps int
	// Seed drives both graph generation and pivot selection.
	Seed int64
}

func (c EngineBenchConfig) withDefaults() EngineBenchConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Stream <= 0 {
		c.Stream = 64
	}
	if c.GraphScale <= 0 {
		c.GraphScale = 4
	}
	if c.Warmup < 0 {
		c.Warmup = 1
	}
	if c.Reps < 1 {
		c.Reps = 3
	}
	return c
}

// EngineRow is one detection mode's measured throughput over the
// stream.
type EngineRow struct {
	// Mode is "oneshot" (scc.Detect per graph), "engine" (a warm
	// scc.Engine's Detect per graph) or "batch" (Engine.DetectBatch
	// over the whole stream).
	Mode string `json:"mode"`

	RunsPerSec   float64 `json:"runs_per_sec"`
	NsPerRun     float64 `json:"ns_per_run"`
	AllocsPerRun uint64  `json:"allocs_per_run"`
	BytesPerRun  uint64  `json:"bytes_per_run"`
}

// EngineReport is the "engine" section of BENCH_scc.json.
type EngineReport struct {
	Workers    int         `json:"workers"`
	Stream     int         `json:"stream_graphs"`
	GraphNodes int         `json:"graph_nodes"`
	Warmup     int         `json:"warmup"`
	Reps       int         `json:"reps"`
	Seed       int64       `json:"seed"`
	GoVersion  string      `json:"go_version"`
	Rows       []EngineRow `json:"rows"`
	// Speedup is Engine.Detect's runs/sec over per-call Detect's: the
	// per-call amortization factor (setup, allocations, GC pressure
	// removed; the detection work itself is unchanged).
	Speedup float64 `json:"engine_vs_oneshot_speedup"`
	// BatchSpeedup is Engine.DetectBatch's runs/sec over per-call
	// Detect's — the engine's request-stream throughput gain, which
	// benchgate -engine gates. DetectBatch additionally routes each
	// small graph to sequential Tarjan across the pinned gang, so this
	// combines gang amortization with the right-algorithm choice for
	// tiny graphs.
	BatchSpeedup float64 `json:"batch_vs_oneshot_speedup"`
}

// Row returns the report row for mode, or nil.
func (r *EngineReport) Row(mode string) *EngineRow {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// EngineSweep measures the small-graph detection stream under the
// three modes and returns the report. All modes run Method2 with the
// same fixed worker count, so the only variable is how much state is
// rebuilt per run.
func EngineSweep(cfg EngineBenchConfig) (EngineReport, error) {
	cfg = cfg.withDefaults()
	rep := EngineReport{
		Workers: cfg.Workers, Stream: cfg.Stream, GraphNodes: 1 << cfg.GraphScale,
		Warmup: cfg.Warmup, Reps: cfg.Reps, Seed: cfg.Seed,
		GoVersion: runtime.Version(),
	}
	graphs := make([]*graph.Graph, cfg.Stream)
	for i := range graphs {
		graphs[i] = gen.RMAT(gen.DefaultRMAT(cfg.GraphScale, 8, cfg.Seed+int64(i)))
	}
	opts := scc.Options{Algorithm: scc.Method2, Workers: cfg.Workers, Seed: cfg.Seed}
	ctx := context.Background()

	// oneshot: every Detect builds and tears down an engine.
	oneshot, err := measureStream(cfg, "oneshot", func() (int, error) {
		for _, g := range graphs {
			if _, err := scc.Detect(g, opts); err != nil {
				return 0, err
			}
		}
		return len(graphs), nil
	})
	if err != nil {
		return rep, err
	}

	eng, err := scc.New(opts)
	if err != nil {
		return rep, err
	}
	defer eng.Close()

	// engine: the gang and scratch arena persist across the stream.
	engineRow, err := measureStream(cfg, "engine", func() (int, error) {
		for _, g := range graphs {
			if _, err := eng.Detect(ctx, g); err != nil {
				return 0, err
			}
		}
		return len(graphs), nil
	})
	if err != nil {
		return rep, err
	}

	// batch: one DetectBatch call fans the stream across the gang.
	batch, err := measureStream(cfg, "batch", func() (int, error) {
		results, err := eng.DetectBatch(ctx, graphs)
		if err != nil {
			return 0, err
		}
		for i, br := range results {
			if br.Err != nil {
				return 0, fmt.Errorf("batch graph %d: %w", i, br.Err)
			}
		}
		return len(graphs), nil
	})
	if err != nil {
		return rep, err
	}

	rep.Rows = []EngineRow{oneshot, engineRow, batch}
	if oneshot.RunsPerSec > 0 {
		rep.Speedup = engineRow.RunsPerSec / oneshot.RunsPerSec
		rep.BatchSpeedup = batch.RunsPerSec / oneshot.RunsPerSec
	}
	return rep, nil
}

// measureStream runs pass (one full sweep over the stream, returning
// the number of detections it performed) cfg.Warmup+cfg.Reps times and
// aggregates the measured passes into a row. Throughput is sustained:
// total runs over total measured wall time, so the GC cycles a mode's
// allocations force are charged to that mode — for a request stream
// that recurring cost is as real as the detection itself.
func measureStream(cfg EngineBenchConfig, mode string, pass func() (int, error)) (EngineRow, error) {
	row := EngineRow{Mode: mode}
	for i := 0; i < cfg.Warmup; i++ {
		if _, err := pass(); err != nil {
			return row, fmt.Errorf("%s warmup: %w", mode, err)
		}
	}
	var (
		totalNs             int64
		runs                int
		allocsSum, bytesSum uint64
		before, after       runtime.MemStats
	)
	for i := 0; i < cfg.Reps; i++ {
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		n, err := pass()
		elapsed := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&after)
		if err != nil {
			return row, fmt.Errorf("%s rep %d: %w", mode, i, err)
		}
		totalNs += elapsed
		runs += n
		allocsSum += after.Mallocs - before.Mallocs
		bytesSum += after.TotalAlloc - before.TotalAlloc
	}
	if runs == 0 || totalNs == 0 {
		return row, fmt.Errorf("%s: no measured runs", mode)
	}
	row.NsPerRun = float64(totalNs) / float64(runs)
	row.RunsPerSec = float64(runs) / (float64(totalNs) / 1e9)
	row.AllocsPerRun = allocsSum / uint64(runs)
	row.BytesPerRun = bytesSum / uint64(runs)
	return row, nil
}

// FormatEngine renders the engine report as an aligned text table.
func FormatEngine(rep EngineReport) string {
	out := fmt.Sprintf("Engine amortization (%d graphs of %d nodes, workers %d, %d reps):\n",
		rep.Stream, rep.GraphNodes, rep.Workers, rep.Reps)
	out += fmt.Sprintf("%-8s %12s %14s %12s %12s\n",
		"mode", "runs/sec", "ns/run", "allocs/run", "B/run")
	for _, r := range rep.Rows {
		out += fmt.Sprintf("%-8s %12.0f %14.0f %12d %12d\n",
			r.Mode, r.RunsPerSec, r.NsPerRun, r.AllocsPerRun, r.BytesPerRun)
	}
	out += fmt.Sprintf("engine vs oneshot: %.2fx runs/sec; batch vs oneshot: %.2fx runs/sec\n",
		rep.Speedup, rep.BatchSpeedup)
	return out
}
