// Package experiments contains the evaluation harness that regenerates
// every table and figure of the paper: the dataset suite (synthetic
// analogs of Table 1's real-world graphs), experiment runners for
// Table 1 and Figures 2 and 6-9, the §3.3 execution logs, and the
// ablation studies behind the §3.4 and §4.1 claims.
package experiments

import (
	"fmt"

	"repro/gen"
	"repro/graph"
)

// PaperNumbers records what the paper's Table 1 reports for the real
// dataset, for side-by-side shape comparison.
type PaperNumbers struct {
	Nodes, Edges, LargestSCC int64
	Diameter                 int
}

// GiantFraction is the paper graph's largest-SCC share of all nodes.
func (p PaperNumbers) GiantFraction() float64 {
	return float64(p.LargestSCC) / float64(p.Nodes)
}

// Dataset is one synthetic analog of a Table 1 graph.
type Dataset struct {
	// Name is the paper's dataset name (lowercased).
	Name string
	// Description explains the generator substitution.
	Description string
	// Star marks graphs the paper derives from undirected sources by
	// random edge orientation (Table 1's “*”).
	Star bool
	// SmallWorld is false for the non-small-world counterexamples
	// (ca-road).
	SmallWorld bool
	// Paper is the real graph's published numbers.
	Paper PaperNumbers
	// Build generates the analog at the given scale factor (1.0 is the
	// default benchmark size; smaller values shrink node counts
	// proportionally for quick runs).
	Build func(scale float64) *graph.Graph
}

// scaled maps a base power-of-two scale through the scale factor.
func scaled(base int, scale float64) int {
	n := base
	for scale <= 0.5 && n > 8 {
		n--
		scale *= 2
	}
	return n
}

// Suite returns the nine dataset analogs in the paper's Table 1 order.
//
// Each generator is tuned toward the structural targets the algorithms
// are sensitive to: the giant SCC's share of the graph, the power-law
// tail of small SCCs, acyclicity (patents), and the diameter class
// (ca-road). Absolute sizes are scaled to laptop range (~100-500 k
// nodes at scale 1.0 versus the paper's 2-125 M).
func Suite() []Dataset {
	return []Dataset{
		{
			Name:        "livej",
			Description: "R-MAT analog of LiveJournal (web/social links)",
			SmallWorld:  true,
			Paper:       PaperNumbers{Nodes: 4_848_571, Edges: 68_993_773, LargestSCC: 3_828_682, Diameter: 18},
			Build: func(s float64) *graph.Graph {
				cfg := gen.DefaultRMAT(scaled(18, s), 14, 101)
				// Mild skew: LiveJournal's giant SCC covers ~79% of the
				// graph, far above what Graph500-default R-MAT skew
				// yields.
				cfg.A, cfg.B, cfg.C, cfg.D = 0.42, 0.23, 0.23, 0.12
				return withStandardTail(gen.RMAT(cfg), 16, 101)
			},
		},
		{
			Name:        "flickr",
			Description: "R-MAT analog of the Flickr user graph (heavy mid-size SCC tail)",
			SmallWorld:  true,
			Paper:       PaperNumbers{Nodes: 2_302_925, Edges: 33_140_018, LargestSCC: 1_605_184, Diameter: 7},
			Build: func(s float64) *graph.Graph {
				cfg := gen.DefaultRMAT(scaled(17, s), 14, 102)
				cfg.A, cfg.B, cfg.C, cfg.D = 0.45, 0.18, 0.18, 0.19
				core := gen.RMAT(cfg)
				// Flickr shows the paper's heaviest recursive-phase
				// share (Figure 8): give it the largest mid-size tail.
				return gen.WithTail(core, gen.TailConfig{
					Components:  core.NumNodes() / 8,
					Alpha:       2.0,
					MaxSize:     128,
					AttachEdges: 2,
					ChainProb:   0.6,
					Seed:        102,
				})
			},
		},
		{
			Name:        "baidu",
			Description: "sparser, more asymmetric R-MAT analog of Baidu encyclopedia links",
			SmallWorld:  true,
			Paper:       PaperNumbers{Nodes: 2_141_300, Edges: 17_794_839, LargestSCC: 609_905, Diameter: 5},
			Build: func(s float64) *graph.Graph {
				cfg := gen.DefaultRMAT(scaled(17, s), 5, 103)
				cfg.A, cfg.B, cfg.C, cfg.D = 0.60, 0.22, 0.13, 0.05
				return withStandardTail(gen.RMAT(cfg), 16, 103)
			},
		},
		{
			Name:        "wiki",
			Description: "large sparse R-MAT analog of English Wikipedia links",
			SmallWorld:  true,
			Paper:       PaperNumbers{Nodes: 15_172_740, Edges: 131_166_252, LargestSCC: 4_736_008, Diameter: 6},
			Build: func(s float64) *graph.Graph {
				cfg := gen.DefaultRMAT(scaled(18, s), 6, 104)
				cfg.A, cfg.B, cfg.C, cfg.D = 0.58, 0.21, 0.14, 0.07
				return withStandardTail(gen.RMAT(cfg), 16, 104)
			},
		},
		{
			Name:        "friend",
			Description: "randomly oriented undirected R-MAT analog of Friendster",
			Star:        true,
			SmallWorld:  true,
			Paper:       PaperNumbers{Nodes: 124_836_180, Edges: 1_806_067_135, LargestSCC: 46_941_703, Diameter: 25},
			Build: func(s float64) *graph.Graph {
				core := gen.RMATUndirected(gen.DefaultRMAT(scaled(18, s), 7, 105))
				return withStandardTail(core, 24, 105)
			},
		},
		{
			Name:        "twitter",
			Description: "dense R-MAT analog of the Twitter follower graph",
			SmallWorld:  true,
			Paper:       PaperNumbers{Nodes: 41_652_230, Edges: 1_468_365_182, LargestSCC: 33_479_734, Diameter: 6},
			Build: func(s float64) *graph.Graph {
				cfg := gen.DefaultRMAT(scaled(17, s), 24, 106)
				cfg.A, cfg.B, cfg.C, cfg.D = 0.50, 0.20, 0.20, 0.10
				return withStandardTail(gen.RMAT(cfg), 16, 106)
			},
		},
		{
			Name:        "orkut",
			Description: "randomly oriented undirected R-MAT analog of Orkut (dense, near-total giant SCC)",
			Star:        true,
			SmallWorld:  true,
			Paper:       PaperNumbers{Nodes: 3_072_627, Edges: 11_718_583, LargestSCC: 2_963_298, Diameter: 8},
			Build: func(s float64) *graph.Graph {
				cfg := gen.DefaultRMAT(scaled(17, s), 16, 107)
				cfg.A, cfg.B, cfg.C, cfg.D = 0.35, 0.25, 0.25, 0.15
				return gen.RMATUndirected(cfg)
			},
		},
		{
			Name:        "patents",
			Description: "citation DAG analog of the US patent graph (acyclic: all SCCs trivial)",
			SmallWorld:  true,
			Paper:       PaperNumbers{Nodes: 3_774_768, Edges: 16_518_948, LargestSCC: 1, Diameter: 22},
			Build: func(s float64) *graph.Graph {
				n := 1 << scaled(18, s)
				return gen.CitationDAG(n, 5, 108)
			},
		},
		{
			Name:        "ca-road",
			Description: "randomly oriented 2-D lattice analog of the California road network (planar, high diameter)",
			Star:        true,
			SmallWorld:  false,
			Paper:       PaperNumbers{Nodes: 1_965_206, Edges: 5_533_214, LargestSCC: 1_168_580, Diameter: 850},
			Build: func(s float64) *graph.Graph {
				side := 1 << (scaled(18, s) / 2)
				return gen.RoadLattice(gen.RoadLatticeConfig{
					Rows: side, Cols: side, TwoWayProb: 0.05, Seed: 109,
				})
			},
		},
	}
}

// withStandardTail attaches the canonical power-law SCC tail (Figure
// 3(a)'s small components around the giant SCC) to a core graph: one
// tail component per `div` core nodes, power-law sizes with exponent
// 2.2 truncated at 64, two attachment edges each, 40% chained to other
// tail components.
func withStandardTail(core *graph.Graph, div int, seed int64) *graph.Graph {
	return gen.WithTail(core, gen.TailConfig{
		Components:  core.NumNodes() / div,
		Alpha:       2.2,
		MaxSize:     64,
		AttachEdges: 2,
		ChainProb:   0.4,
		Seed:        seed,
	})
}

// Extras returns the high-diameter stress datasets that are findable
// by name (sccbench -data, the multipivot experiment) but excluded
// from Names() — they are not Table 1 analogs, so the paper's figures
// and the default bench sweep never include them.
func Extras() []Dataset {
	return []Dataset{
		{
			Name:        "deep-chain",
			Description: "necklace of 256-node cycles chained head-to-tail (diameter ~n, untrimmable)",
			SmallWorld:  false,
			Build: func(s float64) *graph.Graph {
				n := 1 << scaled(17, s)
				const m = 256
				cycles := n / m
				if cycles < 2 {
					cycles = 2
				}
				b := graph.NewBuilder(cycles * m)
				for c := 0; c < cycles; c++ {
					base := c * m
					for i := 0; i < m; i++ {
						b.AddEdge(graph.NodeID(base+i), graph.NodeID(base+(i+1)%m))
					}
					if c+1 < cycles {
						b.AddEdge(graph.NodeID(base), graph.NodeID(base+m))
					}
				}
				return b.Build()
			},
		},
		{
			Name:        "zig-zag",
			Description: "two opposed chains closed into one giant ring with sparse one-way rungs (single SCC, diameter ~n)",
			SmallWorld:  false,
			Build: func(s float64) *graph.Graph {
				n := 1 << scaled(16, s)
				b := graph.NewBuilder(2 * n)
				// Top chain runs forward, bottom chain runs backward; the
				// two joins close the ring, so all 2n nodes are one SCC.
				for i := 0; i < n-1; i++ {
					b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
					b.AddEdge(graph.NodeID(n+i+1), graph.NodeID(n+i))
				}
				b.AddEdge(graph.NodeID(n-1), graph.NodeID(2*n-1))
				b.AddEdge(graph.NodeID(n), 0)
				// Sparse one-way rungs zig-zag across the strip: shortcuts
				// forward along the ring that never reduce the backward
				// distance, keeping the effective diameter Θ(n).
				for i := 16; i < n; i += 16 {
					b.AddEdge(graph.NodeID(i), graph.NodeID(n+i))
				}
				return b.Build()
			},
		},
	}
}

// Find returns the named dataset from the suite or the extras.
func Find(name string) (Dataset, error) {
	for _, d := range Suite() {
		if d.Name == name {
			return d, nil
		}
	}
	for _, d := range Extras() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("experiments: unknown dataset %q", name)
}

// Names lists the suite's dataset names in order.
func Names() []string {
	suite := Suite()
	names := make([]string, len(suite))
	for i, d := range suite {
		names[i] = d.Name
	}
	return names
}
