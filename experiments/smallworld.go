package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/gen"
	"repro/graph"
	"repro/scc"
)

// SmallWorldPoint is one rewiring-probability sample of the §2.2
// demonstration.
type SmallWorldPoint struct {
	// Beta is the Watts-Strogatz rewiring probability.
	Beta float64
	// Diameter is the estimated pseudo-diameter at this beta.
	Diameter int
	// Phase1Levels is the number of BFS levels Method 2's phase 1
	// needed — the algorithmic consequence of the diameter.
	Phase1Levels int
	// WCCRounds is Par-WCC's convergence rounds.
	WCCRounds int
	// Method2Time and TarjanTime compare the algorithms at this shape.
	Method2Time, TarjanTime time.Duration
}

// SmallWorldSweep reproduces the §2.2 background claim — "by simply
// re-wiring only a few edges in an arbitrary way, the diameter of any
// graph rapidly shrinks" — and traces its algorithmic consequences:
// as beta grows the diameter collapses, phase-1 BFS level counts and
// WCC rounds drop with it, and Method 2 moves from hopeless (ring
// lattice) toward competitive.
func SmallWorldSweep(n, k int, betas []float64, seed int64) []SmallWorldPoint {
	var out []SmallWorldPoint
	for _, beta := range betas {
		g := gen.WattsStrogatz(n, k, beta, seed)
		p := SmallWorldPoint{Beta: beta}
		p.Diameter = graph.EstimateDiameter(g, 6, seed)
		p.TarjanTime = measure(2, func() { detect(g, scc.Options{Algorithm: scc.Tarjan}) })
		p.Method2Time = measure(2, func() {
			res := detect(g, scc.Options{Algorithm: scc.Method2, Seed: seed})
			p.Phase1Levels = res.Phase1Levels
			p.WCCRounds = res.WCCRounds
		})
		out = append(out, p)
	}
	return out
}

// FormatSmallWorld renders the sweep.
func FormatSmallWorld(points []SmallWorldPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Watts-Strogatz rewiring sweep (§2.2: diameter collapse)\n")
	fmt.Fprintf(&b, "%8s %9s %11s %10s %12s %12s\n",
		"beta", "diameter", "BFS-levels", "WCC-rnds", "Method2", "Tarjan")
	for _, p := range points {
		fmt.Fprintf(&b, "%8.4f %9d %11d %10d %12v %12v\n",
			p.Beta, p.Diameter, p.Phase1Levels, p.WCCRounds,
			p.Method2Time.Round(time.Microsecond), p.TarjanTime.Round(time.Microsecond))
	}
	return b.String()
}
