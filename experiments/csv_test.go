package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
	"time"

	"repro/schedsim"
)

// parseCSV parses a writer's output and sanity-checks the rectangle.
func parseCSV(t *testing.T, buf *bytes.Buffer, wantCols int) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("only %d CSV rows", len(records))
	}
	for i, rec := range records {
		if len(rec) != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(rec), wantCols)
		}
	}
	return records
}

func TestTable1CSV(t *testing.T) {
	rows := []Table1Row{{
		Name: "livej", Nodes: 100, Edges: 500, LargestSCC: 70, NumSCCs: 20, Diameter: 9,
		Paper: PaperNumbers{Nodes: 1000, Edges: 5000, LargestSCC: 700, Diameter: 18},
	}}
	var buf bytes.Buffer
	if err := Table1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, 11)
	if recs[1][0] != "livej" || recs[1][2] != "100" {
		t.Fatalf("row: %v", recs[1])
	}
}

func TestSpeedupCSV(t *testing.T) {
	series := []SpeedupSeries{{
		Dataset: "x", Mode: Modeled, TarjanTime: time.Millisecond,
		Series: map[string][]SpeedupPoint{
			"Method2": {{Threads: 1, Speedup: 0.5, Time: 2 * time.Millisecond},
				{Threads: 32, Speedup: 5.0, Time: 200 * time.Microsecond}},
		},
	}}
	var buf bytes.Buffer
	if err := SpeedupCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, 7)
	if len(recs) != 3 {
		t.Fatalf("%d rows", len(recs))
	}
	sp, _ := strconv.ParseFloat(recs[2][4], 64)
	if sp != 5.0 {
		t.Fatalf("speedup %v", recs[2])
	}
}

func TestBreakdownAndFractionsCSV(t *testing.T) {
	d, _ := Find("baidu")
	rows := Figure7(d, testScale, []int{1}, Modeled, schedsim.PaperMachine(), 1)
	var buf bytes.Buffer
	if err := BreakdownCSV(&buf, "baidu", rows); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 9)

	fr := Figure8(testScale, 1)
	buf.Reset()
	if err := FractionsCSV(&buf, fr); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, 6)
	if len(recs) != 10 { // header + 9 datasets
		t.Fatalf("%d rows", len(recs))
	}
}

func TestSizeDistCSV(t *testing.T) {
	dists := []SizeDist{{Dataset: "a", Buckets: []int64{5, 0, 2}}}
	var buf bytes.Buffer
	if err := SizeDistCSV(&buf, dists); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, 3)
	if len(recs) != 3 { // header + 2 nonzero buckets
		t.Fatalf("%d rows", len(recs))
	}
}

func TestDistScalingCSV(t *testing.T) {
	d, _ := Find("baidu")
	ds := DistScalingExperiment(d, testScale, []int{1, 2}, 1)
	var buf bytes.Buffer
	if err := DistScalingCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 10)
}

func TestRelatedCSV(t *testing.T) {
	rc := RelatedComparison{Dataset: "x", Rows: []RelatedRow{
		{Algorithm: "Tarjan", Time: time.Millisecond, VsTarjan: 1},
	}}
	var buf bytes.Buffer
	if err := RelatedCSV(&buf, rc); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 5)
}
