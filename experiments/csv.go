package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/dist"
	"repro/scc"
)

// CSV writers: one per experiment artifact, so the figures can be
// re-plotted with any tool. Every writer emits a header row and flushes
// before returning.

// Table1CSV writes the Table 1 rows.
func Table1CSV(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "star", "nodes", "edges", "largest_scc", "num_sccs",
		"diameter", "paper_nodes", "paper_edges", "paper_largest_scc", "paper_diameter"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Name, strconv.FormatBool(r.Star),
			strconv.Itoa(r.Nodes), strconv.FormatInt(r.Edges, 10),
			strconv.FormatInt(r.LargestSCC, 10), strconv.FormatInt(r.NumSCCs, 10),
			strconv.Itoa(r.Diameter),
			strconv.FormatInt(r.Paper.Nodes, 10), strconv.FormatInt(r.Paper.Edges, 10),
			strconv.FormatInt(r.Paper.LargestSCC, 10), strconv.Itoa(r.Paper.Diameter),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SpeedupCSV writes Figure 6 series (one row per dataset × algorithm ×
// thread count).
func SpeedupCSV(w io.Writer, series []SpeedupSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "mode", "algorithm", "threads", "speedup", "time_ns", "tarjan_ns"}); err != nil {
		return err
	}
	for _, s := range series {
		names := make([]string, 0, len(s.Series))
		for name := range s.Series {
			names = append(names, name)
		}
		sortStringsStable(names)
		for _, name := range names {
			for _, p := range s.Series[name] {
				rec := []string{
					s.Dataset, s.Mode.String(), name,
					strconv.Itoa(p.Threads),
					strconv.FormatFloat(p.Speedup, 'f', 4, 64),
					strconv.FormatInt(int64(p.Time), 10),
					strconv.FormatInt(int64(s.TarjanTime), 10),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// BreakdownCSV writes Figure 7 rows.
func BreakdownCSV(w io.Writer, dataset string, rows []BreakdownRow) error {
	cw := csv.NewWriter(w)
	header := []string{"dataset", "algorithm", "threads"}
	for ph := scc.Phase(0); ph < scc.NumPhases; ph++ {
		header = append(header, fmt.Sprintf("%s_ns", ph))
	}
	header = append(header, "total_ns")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{dataset, r.Algorithm, strconv.Itoa(r.Threads)}
		for _, t := range r.Phases {
			rec = append(rec, strconv.FormatInt(int64(t), 10))
		}
		rec = append(rec, strconv.FormatInt(int64(r.Total), 10))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FractionsCSV writes Figure 8 rows.
func FractionsCSV(w io.Writer, rows []FractionRow) error {
	cw := csv.NewWriter(w)
	header := []string{"dataset"}
	for ph := scc.Phase(0); ph < scc.NumPhases; ph++ {
		header = append(header, ph.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Dataset}
		for _, f := range r.Fractions {
			rec = append(rec, strconv.FormatFloat(f, 'f', 6, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SizeDistCSV writes Figure 2/9 bucket rows for any number of datasets.
func SizeDistCSV(w io.Writer, dists []SizeDist) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "bucket_log2", "count"}); err != nil {
		return err
	}
	for _, d := range dists {
		for i, c := range d.Buckets {
			if c == 0 {
				continue
			}
			if err := cw.Write([]string{d.Dataset, strconv.Itoa(i), strconv.FormatInt(c, 10)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// DistScalingCSV writes the distributed-extension scaling rows.
func DistScalingCSV(w io.Writer, ds DistScaling) error {
	cw := csv.NewWriter(w)
	header := []string{"dataset", "workers", "messages", "supersteps", "time_ns", "num_sccs"}
	for ph := dist.PhaseID(0); ph < dist.NumDistPhases; ph++ {
		header = append(header, fmt.Sprintf("%s_msgs", ph))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range ds.Points {
		rec := []string{
			ds.Dataset, strconv.Itoa(p.Workers),
			strconv.FormatInt(p.Messages, 10), strconv.Itoa(p.Supersteps),
			strconv.FormatInt(int64(p.Time), 10), strconv.FormatInt(p.NumSCCs, 10),
		}
		for _, m := range p.PhaseMessages {
			rec = append(rec, strconv.FormatInt(m, 10))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RelatedCSV writes the related-work roster rows.
func RelatedCSV(w io.Writer, rc RelatedComparison) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "algorithm", "time_ns", "vs_tarjan", "peak_queue"}); err != nil {
		return err
	}
	for _, r := range rc.Rows {
		rec := []string{
			rc.Dataset, r.Algorithm,
			strconv.FormatInt(int64(r.Time), 10),
			strconv.FormatFloat(r.VsTarjan, 'f', 4, 64),
			strconv.FormatInt(r.PeakQueue, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
