package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/scc"
)

// MultiPivotBenchConfig configures the kernel-comparison sweep behind
// sccbench -exp multipivot.
type MultiPivotBenchConfig struct {
	// Scale is the dataset scale factor.
	Scale float64
	// Workers is the Detect worker count (0 = GOMAXPROCS).
	Workers int
	// Warmup runs are executed and discarded per (dataset, kernel).
	Warmup int
	// Reps is the number of measured repetitions (>= 1).
	Reps int
	// Seed drives pivot selection.
	Seed int64
	// HighDiameter and Controls override the dataset lists; nil selects
	// the defaults (ca-road + the Extras stress set, and two small-world
	// controls).
	HighDiameter []string
	Controls     []string
}

func (c MultiPivotBenchConfig) withDefaults() MultiPivotBenchConfig {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Reps < 1 {
		c.Reps = 1
	}
	if c.HighDiameter == nil {
		c.HighDiameter = []string{"ca-road", "deep-chain", "zig-zag"}
	}
	if c.Controls == nil {
		c.Controls = []string{"livej", "flickr"}
	}
	return c
}

// KernelCompareRow is one dataset measured under both kernels with
// otherwise identical options — the like-vs-like comparison benchgate
// -multipivot enforces.
type KernelCompareRow struct {
	Dataset       string  `json:"dataset"`
	HighDiameter  bool    `json:"high_diameter"`
	Nodes         int     `json:"nodes"`
	Edges         int64   `json:"edges"`
	WorklistNs    float64 `json:"worklist_ns"`
	WorklistMin   int64   `json:"worklist_min_ns"`
	MultiPivotNs  float64 `json:"multipivot_ns"`
	MultiPivotMin int64   `json:"multipivot_min_ns"`
	NumSCCs       int64   `json:"num_sccs"`

	// Metrics is the final multi-pivot repetition's counter snapshot
	// (pivot batches, reach waves/claims, local-search collapses).
	Metrics scc.MetricsSnapshot `json:"metrics"`
}

// MultiPivotReport is the "multipivot" section of BENCH_scc.json. Like
// the engine section it is rewritten only by its own experiment; the
// bench and engine experiments preserve it across merges.
type MultiPivotReport struct {
	Scale     float64            `json:"scale"`
	Workers   int                `json:"workers"`
	Warmup    int                `json:"warmup"`
	Reps      int                `json:"reps"`
	Seed      int64              `json:"seed"`
	GoVersion string             `json:"go_version"`
	Rows      []KernelCompareRow `json:"rows"`
}

// MultiPivotSweep measures Method2 under the worklist and multi-pivot
// kernels over the high-diameter stress set plus small-world controls.
// Both kernels see identical graphs, seeds and worker counts, so a row
// is a direct like-vs-like comparison.
func MultiPivotSweep(cfg MultiPivotBenchConfig) (MultiPivotReport, error) {
	cfg = cfg.withDefaults()
	rep := MultiPivotReport{
		Scale: cfg.Scale, Workers: cfg.Workers, Warmup: cfg.Warmup,
		Reps: cfg.Reps, Seed: cfg.Seed, GoVersion: runtime.Version(),
	}
	type entry struct {
		name string
		high bool
	}
	var entries []entry
	for _, n := range cfg.HighDiameter {
		entries = append(entries, entry{n, true})
	}
	for _, n := range cfg.Controls {
		entries = append(entries, entry{n, false})
	}
	for _, e := range entries {
		d, err := Find(e.name)
		if err != nil {
			return rep, err
		}
		g := d.Build(cfg.Scale)
		row := KernelCompareRow{
			Dataset: e.name, HighDiameter: e.high,
			Nodes: g.NumNodes(), Edges: g.NumEdges(),
		}
		for _, kern := range []scc.Kernels{scc.KernelsWorklist, scc.KernelsMultiPivot} {
			opts := scc.Options{
				Algorithm: scc.Method2, Workers: cfg.Workers,
				Seed: cfg.Seed, Kernels: kern,
			}
			for i := 0; i < cfg.Warmup; i++ {
				if _, err := scc.Detect(g, opts); err != nil {
					return rep, fmt.Errorf("%s/%s warmup: %w", e.name, kern, err)
				}
			}
			var sum float64
			minNs := int64(math.MaxInt64)
			for i := 0; i < cfg.Reps; i++ {
				t0 := time.Now()
				res, err := scc.Detect(g, opts)
				elapsed := time.Since(t0).Nanoseconds()
				if err != nil {
					return rep, fmt.Errorf("%s/%s rep %d: %w", e.name, kern, i, err)
				}
				sum += float64(elapsed)
				if elapsed < minNs {
					minNs = elapsed
				}
				row.NumSCCs = res.NumSCCs
				if kern == scc.KernelsMultiPivot {
					row.Metrics = res.Metrics
				}
			}
			mean := sum / float64(cfg.Reps)
			if kern == scc.KernelsWorklist {
				row.WorklistNs, row.WorklistMin = mean, minNs
			} else {
				row.MultiPivotNs, row.MultiPivotMin = mean, minNs
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// FormatMultiPivot renders the comparison as an aligned text table.
func FormatMultiPivot(rep MultiPivotReport) string {
	out := fmt.Sprintf("Kernel comparison (scale %.2g, %d warmup, %d reps, workers %d):\n",
		rep.Scale, rep.Warmup, rep.Reps, rep.Workers)
	out += fmt.Sprintf("%-10s %6s %9s %12s %12s %8s %8s %10s\n",
		"dataset", "class", "nodes", "worklist", "multipivot", "ratio", "waves", "collapses")
	for _, r := range rep.Rows {
		class := "ctrl"
		if r.HighDiameter {
			class = "hidiam"
		}
		ratio := 0.0
		if r.WorklistNs > 0 {
			ratio = r.MultiPivotNs / r.WorklistNs
		}
		out += fmt.Sprintf("%-10s %6s %9d %12s %12s %7.2fx %8d %10d\n",
			r.Dataset, class, r.Nodes,
			time.Duration(r.WorklistNs).Round(time.Microsecond),
			time.Duration(r.MultiPivotNs).Round(time.Microsecond),
			ratio, r.Metrics.ReachWaves, r.Metrics.LocalCollapses)
	}
	return out
}
