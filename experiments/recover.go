package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/graph"
	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/verify"
	"repro/scc"
)

// RecoverBenchConfig configures the crash-recovery harness behind the
// "recover" section of BENCH_serve.json: a durable in-process sccserve
// killed at every mutating-filesystem-op ordinal of a fixed update
// workload, then restarted and checked against a Tarjan oracle.
type RecoverBenchConfig struct {
	// Dataset is the suite graph to serve (default "flickr").
	Dataset string
	// Scale is the dataset scale factor.
	Scale float64
	// Workers is the detection worker count (0 = GOMAXPROCS).
	Workers int
	// Batches is the number of durable update batches in the workload
	// (default 6).
	Batches int
	// SnapshotEvery is the store's snapshot cadence in batches
	// (default 2, so the matrix crosses several snapshot writes).
	SnapshotEvery int64
	// Seed drives pivot selection and the synthetic update batches.
	Seed int64
	// Dir is the scratch root for the per-crash-point durability
	// directories (default: a fresh temp dir, removed afterwards).
	Dir string
}

func (c RecoverBenchConfig) withDefaults() RecoverBenchConfig {
	if c.Dataset == "" {
		c.Dataset = "flickr"
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Batches <= 0 {
		c.Batches = 6
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RecoverPoint is one crash point's outcome: the server was killed at
// the CrashOp-th mutating FS op, restarted over the surviving files,
// and compared against a Tarjan run over exactly the durable prefix.
type RecoverPoint struct {
	CrashOp      int64 `json:"crash_op"`
	AckedBatches int   `json:"acked_batches"`
	RecoveredSeq int64 `json:"recovered_seq"`
	Replayed     int64 `json:"wal_records_replayed"`
	Truncated    bool  `json:"wal_truncated"`
	RecoveryMS   int64 `json:"recovery_ms"`

	// LabelsMatch: the recovered SCC labeling equals the oracle's over
	// the base graph plus the recovered batch prefix.
	LabelsMatch bool `json:"labels_match"`
	// DurabilityOK: every acknowledged batch survived the crash
	// (recovered_seq >= acked_batches).
	DurabilityOK bool `json:"durability_ok"`
	// EpochPreCrash is the last epoch a client observed before the
	// kill; EpochRecovered must not be below it.
	EpochPreCrash  int64 `json:"epoch_pre_crash"`
	EpochRecovered int64 `json:"epoch_recovered"`
}

// RecoverReport is the "recover" section of BENCH_serve.json.
type RecoverReport struct {
	Dataset       string  `json:"dataset"`
	Nodes         int     `json:"nodes"`
	Edges         int64   `json:"edges"`
	Scale         float64 `json:"scale"`
	Batches       int     `json:"batches"`
	SnapshotEvery int64   `json:"snapshot_every"`
	Seed          int64   `json:"seed"`
	GoVersion     string  `json:"go_version"`

	// CrashPoints is the total op budget of the clean workload — one
	// point per ordinal.
	CrashPoints   int            `json:"crash_points"`
	MaxRecoveryMS int64          `json:"max_recovery_ms"`
	AnyTruncated  bool           `json:"any_truncated"`
	Points        []RecoverPoint `json:"points"`
}

// recoverLife drives one process lifetime: open the store over fsys,
// serve, and push batches until the store dies or the workload ends.
// A crash anywhere — including during recovery — is not an error; the
// lifetime just ends early.
func recoverLife(cfg RecoverBenchConfig, g *graph.Graph, dir string,
	fsys durable.FS, batches []string) (acked int, epoch int64, err error) {
	st, err := durable.Open(durable.Options{
		Dir:           dir,
		SnapshotEvery: cfg.SnapshotEvery,
		FS:            fsys,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		return 0, 0, nil // crashed inside Open: nothing was acked
	}
	defer st.Close()
	srv, err := server.New(server.Config{
		Options: scc.Options{Algorithm: scc.Method2, Workers: cfg.Workers, Seed: cfg.Seed},
		Durable: st,
		Logf:    func(string, ...any) {},
	}, g)
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.WaitReady(ctx); err != nil {
		return 0, 0, nil // crashed during recovery: nothing was acked
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	epoch = srv.Snapshot().Epoch
	for _, b := range batches {
		resp, err := http.Post(ts.URL+"/update?wait=1", "text/plain", strings.NewReader(b))
		if err != nil {
			return acked, epoch, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return acked, epoch, nil // store died mid-workload
		}
		acked++
		if e := srv.Snapshot().Epoch; e > epoch {
			epoch = e
		}
	}
	return acked, epoch, nil
}

// RecoverSweep runs the crash-point matrix: a probe lifetime over a
// counting filesystem fixes the op budget, then every ordinal gets a
// fresh directory, a lifetime crashed exactly there, and a clean
// restart verified for durability, label correctness, and epoch
// monotonicity.
func RecoverSweep(cfg RecoverBenchConfig) (RecoverReport, error) {
	cfg = cfg.withDefaults()
	d, err := Find(cfg.Dataset)
	if err != nil {
		return RecoverReport{}, err
	}
	g := d.Build(cfg.Scale)
	rep := RecoverReport{
		Dataset: cfg.Dataset, Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Scale: cfg.Scale, Batches: cfg.Batches, SnapshotEvery: cfg.SnapshotEvery,
		Seed: cfg.Seed, GoVersion: runtime.Version(),
	}

	root := cfg.Dir
	if root == "" {
		root, err = os.MkdirTemp("", "sccrecover")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(root)
	}

	// Synthetic update batches: random edges among existing nodes, so
	// the oracle graph is just base edges + the durable prefix.
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := g.NumNodes()
	batchBodies := make([]string, cfg.Batches)
	batchEdges := make([][]graph.Edge, cfg.Batches)
	for i := range batchBodies {
		var sb strings.Builder
		for j := 0; j < 4; j++ {
			u, v := rng.Intn(n), rng.Intn(n)
			fmt.Fprintf(&sb, "%d %d\n", u, v)
			batchEdges[i] = append(batchEdges[i], graph.Edge{From: graph.NodeID(u), To: graph.NodeID(v)})
		}
		batchBodies[i] = sb.String()
	}
	baseEdges := g.AppendEdges(nil)

	// oracle memoizes the Tarjan labeling per durable prefix length.
	oracleMemo := make(map[int][]int32)
	oracle := func(prefix int) ([]int32, error) {
		if comp, ok := oracleMemo[prefix]; ok {
			return comp, nil
		}
		edges := append(append([]graph.Edge{}, baseEdges...), flattenBatches(batchEdges[:prefix])...)
		res, err := scc.Detect(graph.FromEdges(n, edges), scc.Options{Algorithm: scc.Tarjan})
		if err != nil {
			return nil, err
		}
		oracleMemo[prefix] = res.Comp
		return res.Comp, nil
	}

	// Probe lifetime: count the clean workload's mutating FS ops.
	probe := durable.NewFaultFS(durable.OSFS{}, durable.FaultConfig{})
	acked, _, err := recoverLife(cfg, g, filepath.Join(root, "probe"), probe, batchBodies)
	if err != nil {
		return rep, fmt.Errorf("recover probe: %w", err)
	}
	if acked != cfg.Batches {
		return rep, fmt.Errorf("recover probe acked %d/%d batches", acked, cfg.Batches)
	}
	total := probe.Ops()
	rep.CrashPoints = int(total)

	for ord := int64(1); ord <= total; ord++ {
		dir := filepath.Join(root, fmt.Sprintf("crash-%04d", ord))
		ffs := durable.NewFaultFS(durable.OSFS{}, durable.FaultConfig{CrashAt: ord})
		acked, preEpoch, err := recoverLife(cfg, g, dir, ffs, batchBodies)
		if err != nil {
			return rep, fmt.Errorf("crash point %d: %w", ord, err)
		}
		if !ffs.Crashed() {
			return rep, fmt.Errorf("crash point %d never fired (%d ops)", ord, ffs.Ops())
		}

		// Clean restart over the crashed directory.
		st, err := durable.Open(durable.Options{
			Dir:           dir,
			SnapshotEvery: cfg.SnapshotEvery,
			Logf:          func(string, ...any) {},
		})
		if err != nil {
			return rep, fmt.Errorf("crash point %d: reopen: %w", ord, err)
		}
		srv, err := server.New(server.Config{
			Options: scc.Options{Algorithm: scc.Method2, Workers: cfg.Workers, Seed: cfg.Seed},
			Durable: st,
			Logf:    func(string, ...any) {},
		}, g)
		if err != nil {
			st.Close()
			return rep, fmt.Errorf("crash point %d: restart: %w", ord, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		readyErr := srv.WaitReady(ctx)
		cancel()
		if readyErr != nil {
			srv.Close()
			st.Close()
			return rep, fmt.Errorf("crash point %d: recovery after crash: %w", ord, readyErr)
		}

		seq := int64(st.LastSeq())
		ms, replayed, truncated := srv.RecoveryStats()
		want, err := oracle(int(seq))
		if err != nil {
			srv.Close()
			st.Close()
			return rep, fmt.Errorf("crash point %d: oracle: %w", ord, err)
		}
		sn := srv.Snapshot()
		pt := RecoverPoint{
			CrashOp:        ord,
			AckedBatches:   acked,
			RecoveredSeq:   seq,
			Replayed:       replayed,
			Truncated:      truncated,
			RecoveryMS:     ms,
			LabelsMatch:    verify.SamePartition(sn.Cond.NodeComp, want),
			DurabilityOK:   seq >= int64(acked),
			EpochPreCrash:  preEpoch,
			EpochRecovered: sn.Epoch,
		}
		srv.Close()
		st.Close()
		rep.Points = append(rep.Points, pt)
		if ms > rep.MaxRecoveryMS {
			rep.MaxRecoveryMS = ms
		}
		if truncated {
			rep.AnyTruncated = true
		}
	}
	return rep, nil
}

func flattenBatches(batches [][]graph.Edge) []graph.Edge {
	var out []graph.Edge
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

// FormatRecover renders the crash matrix as an aligned text table.
func FormatRecover(rep RecoverReport) string {
	out := fmt.Sprintf("crash-recovery matrix (%s: %d nodes, %d edges; %d batches, snapshot every %d):\n",
		rep.Dataset, rep.Nodes, rep.Edges, rep.Batches, rep.SnapshotEvery)
	out += fmt.Sprintf("%6s %6s %5s %8s %6s %8s %7s %8s %12s\n",
		"crash", "acked", "seq", "replayed", "trunc", "recover", "labels", "durable", "epoch")
	for _, p := range rep.Points {
		out += fmt.Sprintf("%6d %6d %5d %8d %6v %7dms %7v %8v %5d→%-5d\n",
			p.CrashOp, p.AckedBatches, p.RecoveredSeq, p.Replayed, p.Truncated,
			p.RecoveryMS, p.LabelsMatch, p.DurabilityOK, p.EpochPreCrash, p.EpochRecovered)
	}
	out += fmt.Sprintf("%d crash points, max recovery %dms, truncation exercised: %v\n",
		rep.CrashPoints, rep.MaxRecoveryMS, rep.AnyTruncated)
	return out
}
