// Package scc is the public API for strongly-connected-component
// detection, implementing the algorithms of Hong, Rodia & Olukotun,
// "On Fast Parallel Detection of Strongly Connected Components (SCC)
// in Small-World Graphs" (SC '13).
//
// Quick start:
//
//	g := gen.RMAT(gen.DefaultRMAT(20, 16, 42))
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	res, err := scc.DetectContext(ctx, g, scc.Options{Algorithm: scc.Method2})
//	if err != nil { ... }
//	fmt.Println(res.NumSCCs, res.LargestSCC())
//
// DetectContext is the primary entry point: it honors cancellation
// and deadlines, and streams progress to an optional Observer. Detect
// is a convenience wrapper over context.Background(). Errors are
// typed — match ErrNilGraph, ErrInvalidOption, ErrCanceled with
// errors.Is, and extract the offending field from an *OptionError
// with errors.As.
//
// Five algorithms are available: the sequential baselines Tarjan and
// Kosaraju, and the three parallel algorithms from the paper —
// Baseline (parallel FW-BW-Trim), Method1 (two-phase parallelization
// that peels the giant SCC with data-parallel BFS), and Method2
// (Method1 plus Trim2 and parallel WCC seeding of the work queue).
// Method2 is the right default for small-world graphs; Tarjan wins on
// high-diameter graphs such as road networks (§5 of the paper).
package scc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/graph"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/multistep"
	"repro/internal/obf"
	"repro/internal/parallel"
	"repro/internal/verify"
)

// Algorithm selects the SCC detection algorithm.
type Algorithm int

const (
	// Method2 (the zero value, and the recommended default) is
	// Algorithm 9 of the paper: Par-Trim, data-parallel FW-BW,
	// Par-Trim′ (Trim/Trim2/Trim), Par-WCC, then task-parallel
	// recursive FW-BW.
	Method2 Algorithm = iota
	// Method1 is Algorithm 6: two-phase parallelization without the
	// Trim2 and WCC steps.
	Method1
	// Baseline is Algorithm 3: parallel Trim plus task-parallel
	// recursive FW-BW (the conventional FW-BW-Trim).
	Baseline
	// Tarjan is the sequential asymptotically optimal algorithm
	// (iterative, explicit stack).
	Tarjan
	// Kosaraju is the sequential two-pass algorithm.
	Kosaraju
	// FWBW is Fleischer et al.'s original parallel FW-BW algorithm
	// with no trimming — the historical baseline FW-BW-Trim improved
	// on. Provided for comparison; expect it to be slow on graphs with
	// many trivial SCCs.
	FWBW
	// OBF is the recursive OWCTY-Backward-Forward algorithm of Barnat
	// et al. ([9] in the paper), the alternative parallel decomposition
	// the related-work section discusses. The paper reports it gives
	// no large improvement on real-world graphs with few big SCCs;
	// it is provided to reproduce that comparison.
	OBF
	// Coloring is Orzan's color-propagation algorithm, the third
	// classic parallel SCC approach and the basis of the MultiStep and
	// iSpan follow-on work. Provided as an extension baseline.
	Coloring
	// MultiStep is Slota, Rathi & Madduri's follow-on to the paper:
	// Trim, one FW-BW step for the giant SCC, color propagation for
	// the mid-size residue, and a sequential-Tarjan finish below a
	// size cutoff.
	MultiStep
	// Gabow is the sequential path-based (two-stack) algorithm — the
	// third classic linear-time method, used as an extra oracle.
	Gabow
)

// String returns the algorithm's name as used in the paper.
func (a Algorithm) String() string {
	switch a {
	case Method2:
		return "Method2"
	case Method1:
		return "Method1"
	case Baseline:
		return "Baseline"
	case Tarjan:
		return "Tarjan"
	case Kosaraju:
		return "Kosaraju"
	case FWBW:
		return "FW-BW"
	case OBF:
		return "OBF"
	case Coloring:
		return "Coloring"
	case MultiStep:
		return "MultiStep"
	case Gabow:
		return "Gabow"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Kernels selects the trim and WCC kernel implementations used by the
// parallel algorithms. Both choices produce identical SCC partitions;
// they differ only in how much work the fixpoints cost.
type Kernels int

const (
	// KernelsWorklist (the zero value, and the default) selects the
	// work-efficient active-set kernels: counter-peeling trim — degree
	// counters computed once, zero-degree nodes peeled through a
	// frontier worklist, O(N+M) total work regardless of chain depth —
	// and union-find WCC (lock-free union by minimum representative
	// with path halving, Afforest-style neighbor sampling, and a full
	// pass that skips the most frequent sampled component).
	KernelsWorklist Kernels = iota
	// KernelsLegacy selects the paper's round-based fixpoint kernels:
	// Par-Trim (Algorithm 4) rescans every candidate's adjacency each
	// round, and Par-WCC (Algorithm 7) runs min-label propagation
	// rounds. Kept for ablation and as the reference the differential
	// suite compares against.
	KernelsLegacy
	// KernelsMultiPivot keeps the worklist trim/WCC kernels but runs
	// every FW/BW reachability — phase 1's giant-SCC sweeps and the
	// whole recursive phase — through a multi-pivot concurrent
	// reachability engine (after Wang et al., arXiv:2303.04934): all
	// live partitions search simultaneously over a stamped (vertex,
	// pivot-label) claim table, and vertical local searches collapse
	// long chains inside one wave. Same partition as the other kernels;
	// dramatically fewer barriers on high-diameter (road-network,
	// deep-chain) graphs. TraceSchedule is ignored under this kernel —
	// there is no per-task schedule to record.
	KernelsMultiPivot
)

// String returns the flag spelling ("worklist", "legacy",
// "multipivot").
func (k Kernels) String() string { return core.Kernels(k).String() }

// ParseKernels maps a flag spelling (see Kernels.String) to its
// Kernels value.
func ParseKernels(s string) (Kernels, error) {
	switch s {
	case "worklist":
		return KernelsWorklist, nil
	case "legacy":
		return KernelsLegacy, nil
	case "multipivot":
		return KernelsMultiPivot, nil
	}
	return 0, fmt.Errorf("scc: unknown kernels %q (want worklist|legacy|multipivot)", s)
}

// Phase identifies one segment of a parallel run's execution
// breakdown (Figure 7 of the paper).
type Phase int

const (
	// PhaseParTrim is the initial parallel Trim.
	PhaseParTrim Phase = iota
	// PhaseParFWBW is the data-parallel giant-SCC detection.
	PhaseParFWBW
	// PhaseParTrimPost is Par-Trim′ (post-FWBW trimming, including
	// Trim2 for Method2).
	PhaseParTrimPost
	// PhaseParWCC is parallel weakly-connected-component seeding.
	PhaseParWCC
	// PhaseRecurFWBW is the task-parallel recursive FW-BW phase.
	PhaseRecurFWBW
	// NumPhases is the number of phases.
	NumPhases
)

// String returns the phase label used in the paper's Figure 7.
func (p Phase) String() string { return core.Phase(p).String() }

// Options configures Detect.
type Options struct {
	// Algorithm selects the detection algorithm; the zero value is
	// Method2.
	Algorithm Algorithm
	// Workers is the number of parallel workers; <= 0 selects
	// GOMAXPROCS. Ignored by the sequential algorithms.
	Workers int
	// K is the two-level work queue's batch size (§4.3 of the paper);
	// 0 selects the paper's defaults (1 for Baseline/Method1, 8 for
	// Method2).
	K int
	// GiantThreshold is the node fraction above which a phase-1 SCC
	// counts as giant; 0 selects the paper's 1%.
	GiantThreshold float64
	// MaxPhase1Trials bounds the data-parallel FW-BW trials; 0
	// selects 3.
	MaxPhase1Trials int
	// Seed makes pivot selection reproducible.
	Seed int64
	// Kernels selects the trim and WCC kernel implementations; the
	// zero value is KernelsWorklist (work-efficient counter peeling +
	// union-find). KernelsLegacy restores the paper's round-based
	// fixpoints. The partition is identical either way.
	Kernels Kernels
	// DisableTrim2 removes the Trim2 step from Method2 (ablation).
	DisableTrim2 bool
	// DisableHybrid disables the §4.1 hybrid set representation
	// (ablation; expect order-of-magnitude slowdowns on large graphs).
	DisableHybrid bool
	// TraceTasks records the first N recursive-phase task executions
	// in Result.TaskLog, like the §3.3 log.
	TraceTasks int
	// PivotSample is the number of candidates examined when picking a
	// phase-1 pivot (0 = 64; 1 = the paper's uniform-random pivot).
	PivotSample int
	// TraceSchedule records the recursive phase's task DAG in
	// Result.TaskTrace for scheduling simulation.
	TraceSchedule bool
	// DirOptBFS enables direction-optimizing BFS for the phase-1
	// reachability sweeps (the §4.2 Beamer-style upgrade).
	DirOptBFS bool
	// Trim2Iterations repeats Method2's Trim2+Trim pair (the paper
	// applies Trim2 once, §3.4); 0 = once.
	Trim2Iterations int
	// EnableTrim3 adds a size-3 SCC detection pass after Trim2 (an
	// extension beyond the paper; see BenchmarkAblationTrim3).
	EnableTrim3 bool
	// UseStealing swaps the §4.3 two-level work queue for a
	// work-stealing scheduler in the recursive phase (design ablation).
	UseStealing bool
	// Validate re-checks the decomposition against the graph before
	// returning (adds O(n+m) verification time).
	Validate bool
	// Observer, if non-nil, receives structured progress events (phase
	// boundaries, kernel rounds, task completions) during the parallel
	// algorithms' runs; see the Observer type. Sequential algorithms
	// emit no events. A nil Observer costs nothing.
	//
	// Deprecated: prefer the per-run WithObserver RunOption on
	// Engine.Detect. This field keeps working as the engine-level
	// default that WithObserver overrides, and remains the only way to
	// attach an observer to the one-shot Detect/DetectContext.
	Observer Observer
	// StallTimeout, when > 0, arms a per-run watchdog on the parallel
	// algorithms: if no kernel completes a round (trim iteration, BFS
	// level, WCC round, phase-2 task) for this long, the run emits an
	// EventStalled observer event and aborts with an error wrapping
	// ErrStalled. The window must exceed the longest legitimate barrier
	// round. The watchdog also force-aborts a barrier that stays wedged
	// past one window after ctx fires — without it, cancellation is
	// only noticed at round boundaries. 0 disables the watchdog.
	StallTimeout time.Duration
	// MemoryLimit, when > 0, bounds the parallel engine's estimated
	// worst-case scratch + engine footprint in bytes (see
	// EstimateMemory). An over-budget configuration is degraded
	// stepwise before the run starts — fewer workers, then the queue
	// frontier instead of the direction-optimizing bitmap, then task
	// batch K=1 — and the applied steps are recorded in
	// Result.Metrics.DegradedMode. If even the floor configuration does
	// not fit, detection fails up front with an error wrapping
	// ErrMemoryBudget. 0 disables the budget. On a reusable Engine the
	// budget also bounds scratch retained across runs (the high-water
	// pool is shed before a run that would exceed it).
	//
	// Deprecated: prefer the per-run WithMemoryLimit RunOption on
	// Engine.Detect. This field keeps working as the engine-level
	// default that WithMemoryLimit overrides.
	MemoryLimit int64
	// Chaos, if non-nil, injects deterministic failures into the
	// parallel engine's kernels for robustness testing; see
	// ChaosConfig. Nil costs nothing.
	//
	// Deprecated: prefer the per-run WithChaos RunOption on
	// Engine.Detect. This field keeps working as the engine-level
	// default that WithChaos overrides; hit ordinals are counted per
	// run in either form.
	Chaos *ChaosConfig
}

// PhaseStats is one phase's share of a parallel run.
type PhaseStats struct {
	// Time is the phase's wall-clock time.
	Time time.Duration
	// Nodes is how many nodes had their SCC identified in the phase.
	Nodes int64
	// SCCs is how many SCCs the phase emitted.
	SCCs int64
	// Rounds is the phase's number of barrier-synchronized parallel
	// rounds (trim iterations, BFS levels, WCC rounds).
	Rounds int
}

// TaskRecord is one recursive-phase task execution in the format of
// the paper's §3.3 log.
type TaskRecord struct {
	// SCC is the size of the SCC the task identified.
	SCC int
	// FW, BW and Remain are the sizes of the three partitions the task
	// produced.
	FW, BW, Remain int
}

// TaskTrace is one recorded task for the scheduling simulator.
type TaskTrace struct {
	// Parent is the index of the spawning task, or -1 for seeds.
	Parent int32
	// Duration is the task's measured sequential duration.
	Duration time.Duration
}

// QueueStats reports work-queue behavior for the recursive phase.
type QueueStats struct {
	// PeakReady is the maximum number of simultaneously queued tasks —
	// the paper's "maximum queue depth" measure of available
	// task-level parallelism.
	PeakReady int64
	// Total is the number of tasks ever enqueued.
	Total int64
}

// Result is the outcome of a Detect call.
type Result struct {
	// Comp maps every node to its SCC representative: two nodes are in
	// the same SCC iff their Comp entries are equal. Representatives
	// are node ids, not dense component indices; use Renumber for
	// dense ids.
	Comp []int32
	// NumSCCs is the number of strongly connected components.
	NumSCCs int64
	// Algorithm echoes the algorithm that produced the result.
	Algorithm Algorithm
	// Total is the end-to-end detection wall time.
	Total time.Duration
	// Phases is the per-phase breakdown (parallel algorithms only).
	Phases [NumPhases]PhaseStats
	// Queue is the recursive phase's work-queue statistics.
	Queue QueueStats
	// TaskLog is the first Options.TraceTasks task executions.
	TaskLog []TaskRecord
	// TaskTrace is the recursive phase's task DAG (with
	// Options.TraceSchedule).
	TaskTrace []TaskTrace
	// GiantSCC is the size of the giant SCC peeled in phase 1.
	GiantSCC int64
	// Phase1Trials is the number of data-parallel FW-BW trials.
	Phase1Trials int
	// Phase1Levels is the total BFS levels across phase-1 trials.
	Phase1Levels int
	// WCCComponents is the number of weakly connected components found
	// by Par-WCC (Method2 only).
	WCCComponents int
	// WCCRounds is Par-WCC's propagation round count.
	WCCRounds int
	// InitialTasks is the number of tasks seeding the recursive phase.
	InitialTasks int
	// Metrics is the run's performance-counter snapshot (parallel
	// algorithms only): kernel barrier rounds, BFS frontier sizes,
	// recursive-phase scheduler activity and scratch-arena reuse.
	Metrics MetricsSnapshot
}

// MetricsSnapshot is the per-run performance-counter totals recorded
// by the parallel engine. The counters are bumped at round granularity
// (never per node or edge), so collection overhead is negligible; they
// exist to make the paper's fixed-cost story — barrier rounds and
// per-round allocations — observable in benchmarks and dashboards.
type MetricsSnapshot struct {
	// TrimRounds is the total number of trim fixpoint iterations;
	// TrimmedNodes the nodes they removed; Trim2Pairs the size-2 SCCs
	// found by Trim2 passes.
	TrimRounds   int64
	TrimmedNodes int64
	Trim2Pairs   int64
	// BFSLevels is the total number of BFS level barriers across both
	// phase-1 sweeps; FrontierNodes the summed frontier sizes;
	// FrontierPeak the largest single-level frontier; BitmapLevels how
	// many levels ran in the dense bitmap (bottom-up) representation
	// under DirOptBFS.
	BFSLevels     int64
	FrontierNodes int64
	FrontierPeak  int64
	BitmapLevels  int64
	// WCCRounds is the number of WCC barrier rounds: label-propagation
	// rounds under KernelsLegacy, the constant union-find pass count
	// under KernelsWorklist.
	WCCRounds int64
	// TrimPushes is the number of nodes the counter-peeling trim
	// kernel pushed onto its frontier (bounded by the candidate
	// count); PeelDepth the number of peel waves it drained. Both are
	// 0 under KernelsLegacy.
	TrimPushes int64
	PeelDepth  int64
	// UFUnions is the union-find WCC kernel's successful hooks;
	// UFFindHops the parent-pointer hops its finds walked (including
	// path halving); SampledSkips the nodes whose full pass was
	// skipped because sampling already placed them in the most
	// frequent component. All 0 under KernelsLegacy.
	UFUnions     int64
	UFFindHops   int64
	SampledSkips int64
	// PivotBatches is the number of multi-pivot sweep rounds (one
	// concurrent FW+BW reachability pass over every live partition);
	// ReachWaves the wave barriers inside those sweeps; ReachClaims the
	// (vertex, pivot-label) claims won; LocalCollapses the chain nodes
	// folded into an earlier wave by vertical local searches. All 0
	// unless KernelsMultiPivot.
	PivotBatches   int64
	ReachWaves     int64
	ReachClaims    int64
	LocalCollapses int64
	// Tasks is the number of recursive-phase tasks executed (partition
	// classifications under KernelsMultiPivot); Steals the successful
	// steals under the work-stealing ablation.
	Tasks  int64
	Steals int64
	// BuffersReused counts scratch-arena buffer reuses that replaced
	// fresh allocations; BytesReused is the capacity they recycled.
	BuffersReused int64
	BytesReused   int64
	// DegradedMode notes the degradation steps Options.MemoryLimit
	// forced on the run, comma-separated in the order applied (e.g.
	// "workers=2,workers=1,diropt=off"); empty when the run executed
	// exactly as configured.
	DegradedMode string
}

// Detect decomposes g into strongly connected components. Detect is
// safe to call concurrently on the same graph: graphs are immutable
// and every run allocates its own working state. It is DetectContext
// with a background context: it cannot be canceled.
func Detect(g *graph.Graph, opts Options) (*Result, error) {
	return DetectContext(context.Background(), g, opts)
}

// validateOptions rejects out-of-range Options fields with an
// *OptionError (wrapping ErrInvalidOption) naming the field.
func validateOptions(opts Options) error {
	switch {
	case opts.K < 0:
		return &OptionError{Field: "K", Value: opts.K, Reason: "work-queue batch size must be >= 0"}
	case opts.GiantThreshold < 0 || opts.GiantThreshold > 1:
		return &OptionError{Field: "GiantThreshold", Value: opts.GiantThreshold, Reason: "must be in [0,1]"}
	case opts.MaxPhase1Trials < 0:
		return &OptionError{Field: "MaxPhase1Trials", Value: opts.MaxPhase1Trials, Reason: "must be >= 0"}
	case opts.TraceTasks < 0:
		return &OptionError{Field: "TraceTasks", Value: opts.TraceTasks, Reason: "must be >= 0"}
	case opts.PivotSample < 0:
		return &OptionError{Field: "PivotSample", Value: opts.PivotSample, Reason: "must be >= 0"}
	case opts.Trim2Iterations < 0:
		return &OptionError{Field: "Trim2Iterations", Value: opts.Trim2Iterations, Reason: "must be >= 0"}
	case opts.StallTimeout < 0:
		return &OptionError{Field: "StallTimeout", Value: opts.StallTimeout, Reason: "must be >= 0"}
	case opts.MemoryLimit < 0:
		return &OptionError{Field: "MemoryLimit", Value: opts.MemoryLimit, Reason: "must be >= 0"}
	case opts.Kernels != KernelsWorklist && opts.Kernels != KernelsLegacy && opts.Kernels != KernelsMultiPivot:
		return &OptionError{Field: "Kernels", Value: opts.Kernels, Reason: "unknown kernel selection"}
	case opts.Algorithm < Method2 || opts.Algorithm > Gabow:
		return &OptionError{Field: "Algorithm", Value: opts.Algorithm, Reason: "unknown algorithm"}
	}
	return opts.Chaos.validate()
}

// DetectContext decomposes g into strongly connected components under
// ctx. It is the primary entry point; Detect wraps it with a
// background context.
//
// Cancellation is cooperative. The parallel algorithms (Baseline,
// Method1, Method2, FWBW) poll ctx at every barrier-synchronized
// round — trim iterations, BFS levels, WCC propagation rounds and
// work-queue dequeues — so a canceled run returns within one parallel
// round, after all worker goroutines have joined; partial results are
// discarded and the error wraps both ErrCanceled and ctx.Err(). The
// sequential and extension algorithms (Tarjan, Kosaraju, Gabow, OBF,
// Coloring, MultiStep) check ctx only on entry and then run to
// completion.
//
// Failure envelope (parallel algorithms): a panic on any engine
// worker never crashes the process — the run tears down cleanly and
// the error carries a *PanicError with the worker's stack. With
// Options.StallTimeout a run making no kernel progress is aborted
// with an error wrapping ErrStalled; with Options.MemoryLimit an
// over-budget configuration is degraded (see
// Result.Metrics.DegradedMode) or rejected with an error wrapping
// ErrMemoryBudget before any work starts.
//
// Progress events stream to opts.Observer as the run executes; a nil
// observer adds no overhead.
//
// DetectContext is a thin wrapper over a throwaway Engine: it builds
// one, runs once, and closes it. Repeated detection should construct
// the Engine once with New and call Engine.Detect per run — the warm
// path skips gang startup, option re-validation and all steady-state
// allocations.
func DetectContext(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	if g == nil {
		return nil, detectErr("detect", ErrNilGraph)
	}
	e, err := newEngine(opts)
	if err != nil {
		return nil, detectErr("detect", err)
	}
	defer e.Close()
	return e.detectLocked(ctx, g, nil)
}

// runExtension runs the extension algorithms (OBF, Coloring,
// MultiStep), which execute outside the parallel engine.
func runExtension(g *graph.Graph, opts Options) *Result {
	start := time.Now()
	switch opts.Algorithm {
	case OBF:
		r := obf.Run(g, obf.Options{Workers: opts.Workers, K: opts.K, Seed: opts.Seed})
		return &Result{
			Comp:      r.Comp,
			NumSCCs:   r.NumSCCs,
			Algorithm: OBF,
			Total:     time.Since(start),
			Queue:     QueueStats{PeakReady: r.Queue.PeakReady, Total: r.Queue.Total},
		}
	case Coloring:
		r := coloring.Run(g, coloring.Options{Workers: opts.Workers})
		return &Result{
			Comp:      r.Comp,
			NumSCCs:   r.NumSCCs,
			Algorithm: Coloring,
			Total:     time.Since(start),
		}
	default: // MultiStep
		r := multistep.Run(g, multistep.Options{Workers: opts.Workers, Seed: opts.Seed})
		return &Result{
			Comp:      r.Comp,
			NumSCCs:   r.NumSCCs,
			Algorithm: MultiStep,
			Total:     time.Since(start),
			GiantSCC:  r.GiantSCC,
		}
	}
}

// coreOptions translates the public Options into the engine's; shared
// by DetectContext and EstimateMemory so both see the same run
// configuration.
func coreOptions(opts Options) core.Options {
	return core.Options{
		Workers:         opts.Workers,
		K:               opts.K,
		GiantThreshold:  opts.GiantThreshold,
		MaxPhase1Trials: opts.MaxPhase1Trials,
		Seed:            opts.Seed,
		Kernels:         core.Kernels(opts.Kernels),
		DisableTrim2:    opts.DisableTrim2,
		DisableHybrid:   opts.DisableHybrid,
		TraceTasks:      opts.TraceTasks,
		PivotSample:     opts.PivotSample,
		TraceSchedule:   opts.TraceSchedule,
		DirOptBFS:       opts.DirOptBFS,
		Trim2Iterations: opts.Trim2Iterations,
		EnableTrim3:     opts.EnableTrim3,
		UseStealing:     opts.UseStealing,
		Observer:        opts.Observer,
		StallTimeout:    opts.StallTimeout,
		MemoryLimit:     opts.MemoryLimit,
		// Chaos is deliberately absent: injectors hold per-run hit
		// counters, so a fresh one is built per run and delivered via
		// core.Overrides rather than baked into engine construction.
	}
}

// engineErr maps an engine failure to the public typed errors: a
// captured worker panic becomes a *PanicError, a watchdog abort wraps
// ErrStalled, a rejected memory budget wraps ErrMemoryBudget, and
// everything else is caller cancellation.
func engineErr(op string, err error) error {
	var wp *parallel.WorkerPanic
	if errors.As(err, &wp) {
		return &Error{Op: op, Err: &PanicError{Value: wp.Value, Stack: wp.Stack, Worker: wp.Worker}}
	}
	var se *core.StallError
	if errors.As(err, &se) {
		return &Error{Op: op, Err: fmt.Errorf("%w: %w", ErrStalled, se)}
	}
	var be *core.BudgetError
	if errors.As(err, &be) {
		return &Error{Op: op, Err: fmt.Errorf("%w: %w", ErrMemoryBudget, be)}
	}
	return canceledErr(op, err)
}

// EstimateMemory returns the parallel engine's estimated worst-case
// scratch + engine footprint, in bytes, for an n-node graph under
// opts — the quantity Options.MemoryLimit bounds. The estimate is a
// deliberately pessimistic monotone upper bound (worst-case degree
// skew, every retained buffer at full capacity); real usage is
// usually far lower. Sequential and extension algorithms do not run
// on the engine and report 0.
func EstimateMemory(n int, opts Options) int64 {
	switch opts.Algorithm {
	case Baseline, Method1, Method2, FWBW:
		return core.EstimateMemory(n, coreAlgorithm(opts.Algorithm), coreOptions(opts))
	}
	return 0
}

func coreAlgorithm(a Algorithm) core.Algorithm {
	switch a {
	case Baseline:
		return core.Baseline
	case Method1:
		return core.Method1
	case FWBW:
		return core.FWBW
	default:
		return core.Method2
	}
}

// Validate checks that comp is exactly the SCC decomposition of g:
// every label class is strongly connected and the condensation is
// acyclic. It is O(n+m) and intended for tests and untrusted inputs.
func Validate(g *graph.Graph, comp []int32) error {
	return verify.CheckDecomposition(g, comp)
}

// SamePartition reports whether two component labelings induce the
// same partition of the node set (equal up to label renaming).
func SamePartition(a, b []int32) bool { return verify.SamePartition(a, b) }
