package scc

import (
	"bufio"
	"fmt"
	"io"

	"repro/graph"
)

// WriteDOT renders g in Graphviz DOT format with nodes colored by
// component: members of the same SCC share a fillcolor, and SCCs of
// size > 1 are grouped into clusters. Intended for small graphs
// (documentation, debugging); DOT rendering does not scale past a few
// thousand nodes.
func WriteDOT(w io.Writer, g *graph.Graph, comp []int32) error {
	if g.NumNodes() != len(comp) {
		return fmt.Errorf("scc: comp length %d != node count %d", len(comp), g.NumNodes())
	}
	dense, k := Renumber(comp)
	sizes := make([]int64, k)
	for _, c := range dense {
		sizes[c]++
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph scc {")
	fmt.Fprintln(bw, "  node [style=filled];")
	palette := []string{
		"lightblue", "lightgoldenrod", "lightpink", "lightgreen",
		"lightsalmon", "lightcyan", "plum", "khaki",
	}
	// Non-trivial SCCs become clusters.
	for c := int32(0); c < int32(k); c++ {
		if sizes[c] < 2 {
			continue
		}
		fmt.Fprintf(bw, "  subgraph cluster_%d {\n    label=\"scc %d (%d nodes)\";\n", c, c, sizes[c])
		for v := 0; v < g.NumNodes(); v++ {
			if dense[v] == c {
				fmt.Fprintf(bw, "    n%d [fillcolor=%s];\n", v, palette[int(c)%len(palette)])
			}
		}
		fmt.Fprintln(bw, "  }")
	}
	for v := 0; v < g.NumNodes(); v++ {
		if sizes[dense[v]] < 2 {
			fmt.Fprintf(bw, "  n%d [fillcolor=white];\n", v)
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, t := range g.Out(graph.NodeID(v)) {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", v, t)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteCondensationDOT renders a condensation DAG in DOT format, with
// component sizes as labels. Giant components are visually emphasized.
func (c *Condensed) WriteCondensationDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph condensation {")
	fmt.Fprintln(bw, "  rankdir=LR; node [shape=circle, style=filled, fillcolor=white];")
	var maxSize int64
	for _, s := range c.Sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	for comp, size := range c.Sizes {
		attrs := ""
		if size == maxSize && size > 1 {
			attrs = ", fillcolor=lightblue, penwidth=2"
		}
		fmt.Fprintf(bw, "  c%d [label=\"%d\"%s];\n", comp, size, attrs)
	}
	for v := 0; v < c.DAG.NumNodes(); v++ {
		for _, t := range c.DAG.Out(graph.NodeID(v)) {
			fmt.Fprintf(bw, "  c%d -> c%d;\n", v, t)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
