package scc_test

import (
	"encoding/binary"
	"testing"

	"repro/graph"
	"repro/scc"
)

// graphFromBytes decodes fuzz input as a compact binary edge list: the
// first two bytes pick the node count (1..1024) and every following
// 4-byte group is one (from, to) edge with endpoints reduced mod n.
// Every byte string decodes to some valid graph, so the fuzzer spends
// its budget on topology rather than parser rejections.
func graphFromBytes(data []byte) *graph.Graph {
	if len(data) < 2 {
		return graph.FromEdges(0, nil)
	}
	n := int(binary.LittleEndian.Uint16(data[:2]))%1024 + 1
	data = data[2:]
	b := graph.NewBuilder(n)
	for len(data) >= 4 {
		u := graph.NodeID(int(binary.LittleEndian.Uint16(data[:2])) % n)
		v := graph.NodeID(int(binary.LittleEndian.Uint16(data[2:4])) % n)
		b.AddEdge(u, v)
		data = data[4:]
	}
	return b.Build()
}

// FuzzDetect drives the full parallel pipeline — trim, FW-BW, WCC,
// recursion, scratch-arena recycling — on arbitrary topologies: Detect
// must not panic, the decomposition must pass the internal validator
// (Options.Validate), and Method2 must agree with sequential Tarjan.
func FuzzDetect(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0})                         // single node, no edges
	f.Add([]byte{1, 0, 0, 0, 0, 0})             // self-loop
	f.Add([]byte{2, 0, 0, 0, 1, 0, 1, 0, 0, 0}) // 2-cycle
	f.Add([]byte{0, 1, 5, 0, 9, 0, 9, 0, 5, 0}) // cycle in a 257-node graph
	f.Add([]byte{255, 255, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// High-diameter shapes: the topologies the multi-pivot kernel's
	// vertical local searches reorder most aggressively, seeded so the
	// fuzzer mutates from deep-traversal starting points.
	f.Add(encodeGraph(chainGraph(200)))
	f.Add(encodeGraph(cycleOfChains(4, 50)))
	f.Add(encodeGraph(lollipop(40, 120)))
	f.Add(encodeGraph(necklace(6, 20)))
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromBytes(data)
		ref, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
		if err != nil {
			t.Fatalf("tarjan: %v", err)
		}
		for _, kern := range []scc.Kernels{scc.KernelsWorklist, scc.KernelsMultiPivot} {
			res, err := scc.Detect(g, scc.Options{
				Algorithm: scc.Method2, Workers: 2, Seed: 1,
				Kernels: kern, Validate: true,
			})
			if err != nil {
				t.Fatalf("detect/%v: %v", kern, err)
			}
			if res.NumSCCs != ref.NumSCCs {
				t.Fatalf("%v: NumSCCs %d, want %d", kern, res.NumSCCs, ref.NumSCCs)
			}
			if !scc.SamePartition(res.Comp, ref.Comp) {
				t.Fatalf("%v partition differs from Tarjan", kern)
			}
		}
	})
}
