package scc

import (
	"bytes"
	"strings"
	"testing"

	"repro/graph"
)

func TestWriteDOT(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2}, {From: 3, To: 0}})
	res, _ := Detect(g, Options{Algorithm: Tarjan})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, res.Comp); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph scc", "subgraph cluster_", "n0 -> n1", "n3 -> n0", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// The 2-cycle must be inside exactly one cluster.
	if strings.Count(out, "subgraph cluster_") != 1 {
		t.Fatalf("want exactly one cluster:\n%s", out)
	}
}

func TestWriteDOTRejectsBadComp(t *testing.T) {
	g := graph.FromEdges(2, nil)
	if err := WriteDOT(&bytes.Buffer{}, g, []int32{0}); err == nil {
		t.Fatal("wrong-length comp accepted")
	}
}

func TestWriteCondensationDOT(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2}, {From: 2, To: 3}})
	res, _ := Detect(g, Options{Algorithm: Tarjan})
	c, err := Condense(g, res.Comp)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteCondensationDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph condensation") || !strings.Contains(out, "->") {
		t.Fatalf("condensation DOT malformed:\n%s", out)
	}
	// The giant (size 2) must be emphasized.
	if !strings.Contains(out, "lightblue") {
		t.Fatalf("giant component not emphasized:\n%s", out)
	}
}
