package scc

import (
	"errors"
	"fmt"
)

// Sentinel errors returned (wrapped) by Detect and DetectContext.
// Match them with errors.Is.
var (
	// ErrNilGraph reports a nil *graph.Graph argument.
	ErrNilGraph = errors.New("nil graph")
	// ErrInvalidOption reports an Options field outside its valid
	// range. The concrete error is an *OptionError naming the field;
	// retrieve it with errors.As.
	ErrInvalidOption = errors.New("invalid option")
	// ErrCanceled reports that the run's context was canceled or its
	// deadline expired before detection completed. Errors wrapping
	// ErrCanceled also wrap the context's own error, so
	// errors.Is(err, context.Canceled) (or context.DeadlineExceeded)
	// holds as appropriate.
	ErrCanceled = errors.New("detection canceled")
	// ErrValidation reports that Options.Validate found the computed
	// decomposition inconsistent with the graph (an engine bug, not a
	// user error).
	ErrValidation = errors.New("self-validation failed")
)

// Error is the error type returned by Detect, DetectContext and the
// dist entry points. Op names the failing operation ("detect",
// "validate", ...); Err is the underlying cause and always wraps one
// of the package's sentinel errors.
type Error struct {
	// Op is the operation that failed.
	Op string
	// Err is the underlying error.
	Err error
}

func (e *Error) Error() string { return "scc: " + e.Op + ": " + e.Err.Error() }

// Unwrap returns the underlying error for errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// OptionError describes a single invalid Options field. It wraps
// ErrInvalidOption.
type OptionError struct {
	// Field is the Options field name, e.g. "GiantThreshold".
	Field string
	// Value is the rejected value.
	Value any
	// Reason states the constraint that was violated.
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("%v %s: %s = %v", ErrInvalidOption, e.Reason, e.Field, e.Value)
}

// Unwrap makes errors.Is(err, ErrInvalidOption) hold.
func (e *OptionError) Unwrap() error { return ErrInvalidOption }

// detectErr wraps err in the package's typed error envelope.
func detectErr(op string, err error) error {
	return &Error{Op: op, Err: err}
}

// canceledErr wraps a context error so that both
// errors.Is(err, ErrCanceled) and errors.Is(err, ctxErr) hold.
func canceledErr(op string, ctxErr error) error {
	return &Error{Op: op, Err: fmt.Errorf("%w: %w", ErrCanceled, ctxErr)}
}
