package scc

import (
	"errors"
	"fmt"
)

// Sentinel errors returned (wrapped) by Detect and DetectContext.
// Match them with errors.Is.
var (
	// ErrNilGraph reports a nil *graph.Graph argument.
	ErrNilGraph = errors.New("nil graph")
	// ErrInvalidOption reports an Options field outside its valid
	// range. The concrete error is an *OptionError naming the field;
	// retrieve it with errors.As.
	ErrInvalidOption = errors.New("invalid option")
	// ErrCanceled reports that the run's context was canceled or its
	// deadline expired before detection completed. Errors wrapping
	// ErrCanceled also wrap the context's own error, so
	// errors.Is(err, context.Canceled) (or context.DeadlineExceeded)
	// holds as appropriate.
	ErrCanceled = errors.New("detection canceled")
	// ErrValidation reports that Options.Validate found the computed
	// decomposition inconsistent with the graph (an engine bug, not a
	// user error).
	ErrValidation = errors.New("self-validation failed")
	// ErrStalled reports that the stall watchdog (Options.StallTimeout)
	// aborted a run that made no kernel progress for the configured
	// window. The underlying error names the stalled phase and window.
	ErrStalled = errors.New("detection stalled")
	// ErrMemoryBudget reports that Options.MemoryLimit is below the
	// estimated footprint of even the most degraded configuration; no
	// work was started. The underlying error carries the limit and the
	// minimum estimate.
	ErrMemoryBudget = errors.New("memory budget too small")
	// ErrEngineBusy reports a call on an Engine while another
	// Detect/DetectBatch was in flight. Engines serve one run at a
	// time and fail fast rather than queue; callers that want queueing
	// serialize with their own mutex.
	ErrEngineBusy = errors.New("engine busy")
	// ErrEngineClosed reports a call on an Engine after Close, or
	// after a watchdog force-abort destroyed the engine's worker gang
	// (which closes the engine; see Options.StallTimeout).
	ErrEngineClosed = errors.New("engine closed")
)

// Error is the error type returned by Detect, DetectContext and the
// dist entry points. Op names the failing operation ("detect",
// "validate", ...); Err is the underlying cause and always wraps one
// of the package's sentinel errors.
type Error struct {
	// Op is the operation that failed.
	Op string
	// Err is the underlying error.
	Err error
}

func (e *Error) Error() string { return "scc: " + e.Op + ": " + e.Err.Error() }

// Unwrap returns the underlying error for errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// OptionError describes a single invalid Options field. It wraps
// ErrInvalidOption.
type OptionError struct {
	// Field is the Options field name, e.g. "GiantThreshold".
	Field string
	// Value is the rejected value.
	Value any
	// Reason states the constraint that was violated.
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("%v %s: %s = %v", ErrInvalidOption, e.Reason, e.Field, e.Value)
}

// Unwrap makes errors.Is(err, ErrInvalidOption) hold.
func (e *OptionError) Unwrap() error { return ErrInvalidOption }

// PanicError reports a panic captured inside the parallel engine — on
// a gang worker, a work-queue worker, or the coordinating goroutine of
// a kernel. The engine guarantees the panic never crashes the process:
// the round's barrier completes (or is force-abandoned by the
// watchdog), all workers join, the scratch arena is released, and the
// first captured panic surfaces as a *PanicError. Retrieve it with
// errors.As; the zero Comp result of the failed run is discarded.
type PanicError struct {
	// Value is the value the worker panicked with.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
	// Worker is the index of the worker the panic occurred on (0 for
	// panics on the coordinating goroutine).
	Worker int
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("worker %d panicked: %v", e.Worker, e.Value)
}

// Unwrap exposes a panic value that was itself an error (a runtime
// error, an injected chaos failure) to errors.Is / errors.As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// detectErr wraps err in the package's typed error envelope.
func detectErr(op string, err error) error {
	return &Error{Op: op, Err: err}
}

// canceledErr wraps a context error so that both
// errors.Is(err, ErrCanceled) and errors.Is(err, ctxErr) hold.
func canceledErr(op string, ctxErr error) error {
	return &Error{Op: op, Err: fmt.Errorf("%w: %w", ErrCanceled, ctxErr)}
}
