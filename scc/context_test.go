package scc_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/gen"
	"repro/scc"
)

// cancelOn cancels the run from inside the observer the first time an
// event of the given type arrives — a deterministic mid-phase cancel.
type cancelOn struct {
	typ    scc.EventType
	cancel context.CancelFunc
	once   sync.Once
	seen   sync.Map // EventType → struct{} observed before the cancel fired
}

func (c *cancelOn) Observe(ev scc.Event) {
	c.seen.Store(ev.Type, struct{}{})
	if ev.Type == c.typ {
		c.once.Do(c.cancel)
	}
}

// waitGoroutines polls until the goroutine count settles at or below
// base (plus slack for runtime housekeeping), failing after a timeout
// — the leak check for canceled runs.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDetectContextCancelMidPhase cancels a Method2 run on a
// 1M-edge R-MAT graph during the first trim round and checks that the
// run unwinds promptly, reports the typed error, and leaks nothing.
func TestDetectContextCancelMidPhase(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(16, 16, 1)) // 2^16 nodes, ~1M edges
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelOn{typ: scc.EventTrimRound, cancel: cancel}

	start := time.Now()
	res, err := scc.DetectContext(ctx, g, scc.Options{Algorithm: scc.Method2, Seed: 1, Observer: obs})
	elapsed := time.Since(start)

	if res != nil {
		t.Fatalf("canceled run returned a result: %+v", res)
	}
	if !errors.Is(err, scc.ErrCanceled) {
		t.Fatalf("errors.Is(err, ErrCanceled) = false; err = %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false; err = %v", err)
	}
	var se *scc.Error
	if !errors.As(err, &se) || se.Op != "detect" {
		t.Fatalf("want *scc.Error with Op=detect, got %v", err)
	}
	// Cancellation fired during the first trim round; the engine must
	// stop at the next round boundary, not run the remaining phases.
	// A full Method2 run on this graph takes far longer than a single
	// trim round, so a generous absolute bound still catches a run
	// that ignored the cancel.
	if elapsed > 10*time.Second {
		t.Fatalf("canceled run took %v", elapsed)
	}
	for _, typ := range []scc.EventType{scc.EventWCCRound, scc.EventTaskDone} {
		if _, late := obs.seen.Load(typ); late {
			t.Errorf("event %v observed after cancellation during Par-Trim", typ)
		}
	}
	waitGoroutines(t, base)
}

// TestDetectContextCancelRecursivePhase cancels on the first completed
// task of the recursive phase, exercising the work-queue Cancel path.
// Baseline sends every node through the recursive phase, so TaskDone
// events are guaranteed (Method2's earlier phases can consume the
// whole graph before phase 2).
func TestDetectContextCancelRecursivePhase(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(14, 8, 3))
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelOn{typ: scc.EventTaskDone, cancel: cancel}

	res, err := scc.DetectContext(ctx, g, scc.Options{Algorithm: scc.Baseline, Seed: 3, Observer: obs})
	if res != nil || !errors.Is(err, scc.ErrCanceled) {
		t.Fatalf("want canceled error and nil result, got res=%v err=%v", res, err)
	}
	waitGoroutines(t, base)
}

// TestDetectContextDeadline checks that an expired deadline surfaces
// as both ErrCanceled and context.DeadlineExceeded.
func TestDetectContextDeadline(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(12, 8, 2))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := scc.DetectContext(ctx, g, scc.Options{Algorithm: scc.Method2})
	if res != nil {
		t.Fatal("expired-deadline run returned a result")
	}
	if !errors.Is(err, scc.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
}

// TestDetectContextAlreadyCanceled checks the entry fast path.
func TestDetectContextAlreadyCanceled(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []scc.Algorithm{scc.Method2, scc.Tarjan, scc.OBF} {
		res, err := scc.DetectContext(ctx, g, scc.Options{Algorithm: alg})
		if res != nil || !errors.Is(err, scc.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: want canceled error, got res=%v err=%v", alg, res, err)
		}
	}
}

// recorder collects every event in arrival order.
type recorder struct {
	mu     sync.Mutex
	events []scc.Event
}

func (r *recorder) Observe(ev scc.Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// TestObserverEventOrdering checks that a Method2 run emits the phase
// sequence of Algorithm 9 — Par-Trim, Par-FWBW, Par-Trim′, Par-WCC,
// Recur-FWBW — with properly nested PhaseStart/PhaseEnd pairs and
// kernel events attributed to the right phase.
func TestObserverEventOrdering(t *testing.T) {
	// The power-law tail guarantees small SCCs survive into the
	// recursive phase, so TaskDone/QueueSample events are exercised
	// (a bare R-MAT core can be fully consumed by trimming and the
	// giant-SCC peel).
	g := gen.WithTail(gen.RMAT(gen.DefaultRMAT(13, 8, 5)), gen.TailConfig{
		Components:  512,
		Alpha:       2.2,
		MaxSize:     64,
		AttachEdges: 2,
		ChainProb:   0.4,
		Seed:        5,
	})
	rec := &recorder{}
	res, err := scc.DetectContext(context.Background(), g,
		scc.Options{Algorithm: scc.Method2, Seed: 5, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.NumSCCs == 0 {
		t.Fatal("empty result")
	}

	want := []scc.Phase{scc.PhaseParTrim, scc.PhaseParFWBW, scc.PhaseParTrimPost, scc.PhaseParWCC, scc.PhaseRecurFWBW}
	var starts, ends []scc.Phase
	open := -1 // phase currently between start and end, -1 for none
	for i, ev := range rec.events {
		switch ev.Type {
		case scc.EventPhaseStart:
			if open != -1 {
				t.Fatalf("event %d: phase %v started while %v still open", i, scc.Phase(ev.Phase), scc.Phase(open))
			}
			open = ev.Phase
			starts = append(starts, scc.Phase(ev.Phase))
		case scc.EventPhaseEnd:
			if open != ev.Phase {
				t.Fatalf("event %d: phase %v ended but %v was open", i, scc.Phase(ev.Phase), scc.Phase(open))
			}
			open = -1
			ends = append(ends, scc.Phase(ev.Phase))
		case scc.EventRunMetrics:
			// The run-summary event fires once after the final phase has
			// closed; it carries no phase attribution of its own.
			if open != -1 {
				t.Fatalf("event %d: RunMetrics emitted inside open phase %v", i, scc.Phase(open))
			}
			if i != len(rec.events)-1 {
				t.Fatalf("event %d: RunMetrics is not the final event (%d total)", i, len(rec.events))
			}
		default:
			if open != ev.Phase {
				t.Fatalf("event %d: %v stamped with phase %v outside that phase (open: %v)",
					i, ev.Type, scc.Phase(ev.Phase), scc.Phase(open))
			}
		}
		// Kernel events must match the phase's kernel.
		switch ev.Type {
		case scc.EventTrimRound:
			if p := scc.Phase(ev.Phase); p != scc.PhaseParTrim && p != scc.PhaseParTrimPost {
				t.Fatalf("trim round in phase %v", p)
			}
		case scc.EventBFSLevel:
			if p := scc.Phase(ev.Phase); p != scc.PhaseParFWBW {
				t.Fatalf("BFS level in phase %v", p)
			}
		case scc.EventWCCRound:
			if p := scc.Phase(ev.Phase); p != scc.PhaseParWCC {
				t.Fatalf("WCC round in phase %v", p)
			}
		case scc.EventTaskDone, scc.EventQueueSample:
			if p := scc.Phase(ev.Phase); p != scc.PhaseRecurFWBW {
				t.Fatalf("%v in phase %v", ev.Type, p)
			}
		}
	}
	if len(starts) != len(want) {
		t.Fatalf("phase starts %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] || ends[i] != want[i] {
			t.Fatalf("phase sequence starts=%v ends=%v, want %v", starts, ends, want)
		}
	}

	// Round events carry 1-based increasing round numbers, and the
	// recursive phase reports every SCC it found via TaskDone.
	var tasksSCCs int64
	for _, ev := range rec.events {
		if ev.Type == scc.EventTaskDone {
			tasksSCCs++
		}
	}
	if tasksSCCs == 0 {
		t.Fatal("no TaskDone events: the recursive phase never ran")
	}
	if tasksSCCs != res.Phases[scc.PhaseRecurFWBW].SCCs {
		t.Fatalf("TaskDone events %d != recursive-phase SCCs %d",
			tasksSCCs, res.Phases[scc.PhaseRecurFWBW].SCCs)
	}
}

// TestDetectTypedErrors covers the validation error taxonomy.
func TestDetectTypedErrors(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 4, 1))

	if _, err := scc.Detect(nil, scc.Options{}); !errors.Is(err, scc.ErrNilGraph) {
		t.Fatalf("nil graph: got %v", err)
	}

	cases := []struct {
		field string
		opts  scc.Options
	}{
		{"K", scc.Options{K: -1}},
		{"GiantThreshold", scc.Options{GiantThreshold: 1.5}},
		{"GiantThreshold", scc.Options{GiantThreshold: -0.5}},
		{"MaxPhase1Trials", scc.Options{MaxPhase1Trials: -1}},
		{"TraceTasks", scc.Options{TraceTasks: -2}},
		{"PivotSample", scc.Options{PivotSample: -1}},
		{"Trim2Iterations", scc.Options{Trim2Iterations: -3}},
		{"Algorithm", scc.Options{Algorithm: scc.Algorithm(99)}},
	}
	for _, tc := range cases {
		_, err := scc.Detect(g, tc.opts)
		if !errors.Is(err, scc.ErrInvalidOption) {
			t.Fatalf("%s: errors.Is(err, ErrInvalidOption) = false; err = %v", tc.field, err)
		}
		var oe *scc.OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: errors.As(*OptionError) = false; err = %v", tc.field, err)
		}
		if oe.Field != tc.field {
			t.Fatalf("OptionError.Field = %q, want %q (err: %v)", oe.Field, tc.field, err)
		}
		if errors.Is(err, scc.ErrCanceled) || errors.Is(err, scc.ErrNilGraph) {
			t.Fatalf("%s: error matches unrelated sentinels: %v", tc.field, err)
		}
	}
}

// TestDetectBackgroundEquivalence checks that Detect and DetectContext
// with a background context produce the same partition.
func TestDetectBackgroundEquivalence(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(11, 8, 4))
	a, err := scc.Detect(g, scc.Options{Algorithm: scc.Method2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := scc.DetectContext(context.Background(), g, scc.Options{Algorithm: scc.Method2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !scc.SamePartition(a.Comp, b.Comp) {
		t.Fatal("Detect and DetectContext disagree")
	}
}

// TestResultRenumberComponentOf covers the Result accessors.
func TestResultRenumberComponentOf(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 9))
	res, err := scc.Detect(g, scc.Options{Algorithm: scc.Method2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dense, k := res.Renumber()
	if int64(k) != res.NumSCCs {
		t.Fatalf("Renumber k = %d, want NumSCCs = %d", k, res.NumSCCs)
	}
	if len(dense) != g.NumNodes() {
		t.Fatalf("Renumber labeling has %d entries for %d nodes", len(dense), g.NumNodes())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if res.ComponentOf(int32(v)) != res.Comp[v] {
			t.Fatalf("ComponentOf(%d) = %d, want %d", v, res.ComponentOf(int32(v)), res.Comp[v])
		}
	}
	// Dense ids must induce the same partition as the representatives.
	if !scc.SamePartition(dense, res.Comp) {
		t.Fatal("Renumber changed the partition")
	}
}

// TestObserverFunc checks the function adapter.
func TestObserverFunc(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 6, 2))
	var mu sync.Mutex
	count := 0
	obs := scc.ObserverFunc(func(ev scc.Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if _, err := scc.Detect(g, scc.Options{Algorithm: scc.Method2, Observer: obs}); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("ObserverFunc received no events")
	}
}
