package scc

import "sort"

// Renumber converts a representative-based labeling (as produced by
// Detect) into dense component ids 0..k-1, assigned in order of first
// appearance, and returns the labeling and k.
func Renumber(comp []int32) ([]int32, int) {
	out := make([]int32, len(comp))
	ids := make(map[int32]int32, 1024)
	for i, c := range comp {
		id, ok := ids[c]
		if !ok {
			id = int32(len(ids))
			ids[c] = id
		}
		out[i] = id
	}
	return out, len(ids)
}

// ComponentSizes returns the size of every component, in descending
// order — the data behind the paper's Figures 2 and 9.
func ComponentSizes(comp []int32) []int64 {
	counts := make(map[int32]int64, 1024)
	for _, c := range comp {
		counts[c]++
	}
	sizes := make([]int64, 0, len(counts))
	for _, n := range counts {
		sizes = append(sizes, n)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })
	return sizes
}

// SizeHistogram returns hist where hist[s] is the number of components
// of size s (hist[0] is always 0).
func SizeHistogram(comp []int32) []int64 {
	sizes := ComponentSizes(comp)
	if len(sizes) == 0 {
		return []int64{0}
	}
	hist := make([]int64, sizes[0]+1)
	for _, s := range sizes {
		hist[s]++
	}
	return hist
}

// LogSizeHistogram buckets component sizes by powers of two:
// bucket[i] counts components with size in [2^i, 2^(i+1)). This is the
// log-log view used to show the power-law SCC-size distribution.
func LogSizeHistogram(comp []int32) []int64 {
	sizes := ComponentSizes(comp)
	var buckets []int64
	for _, s := range sizes {
		b := 0
		for v := s; v > 1; v >>= 1 {
			b++
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	return buckets
}

// Renumber returns the result's labeling converted to dense component
// ids 0..k-1 (assigned in order of first appearance) together with k,
// the number of components. It is the method form of the package-level
// Renumber.
func (r *Result) Renumber() ([]int32, int) { return Renumber(r.Comp) }

// ComponentOf returns node's SCC representative: two nodes are in the
// same SCC iff their ComponentOf values are equal. Representatives are
// node ids, not dense indices; use Renumber for dense ids.
func (r *Result) ComponentOf(node int32) int32 { return r.Comp[node] }

// LargestSCC returns the size of the largest component (the size of
// the largest SCC, Table 1's column).
func (r *Result) LargestSCC() int64 {
	sizes := ComponentSizes(r.Comp)
	if len(sizes) == 0 {
		return 0
	}
	return sizes[0]
}

// SizeHistogram returns the result's component-size histogram.
func (r *Result) SizeHistogram() []int64 { return SizeHistogram(r.Comp) }

// TrivialSCCs returns the number of size-1 components — the population
// the Trim step targets.
func (r *Result) TrivialSCCs() int64 {
	h := r.SizeHistogram()
	if len(h) > 1 {
		return h[1]
	}
	return 0
}

// Condensation builds the component quotient graph: one node per SCC
// (using dense ids as returned by Renumber), with an edge between two
// components iff the original graph has an edge between them. The
// result is a DAG.
func Condensation(comp []int32, edges func(yield func(u, v int32))) ([]int32, int, [][2]int32) {
	dense, k := Renumber(comp)
	type key struct{ a, b int32 }
	seen := make(map[key]bool)
	var out [][2]int32
	edges(func(u, v int32) {
		a, b := dense[u], dense[v]
		if a == b {
			return
		}
		if kk := (key{a, b}); !seen[kk] {
			seen[kk] = true
			out = append(out, [2]int32{a, b})
		}
	})
	return dense, k, out
}
