package scc

import "repro/internal/events"

// Event is one structured progress event emitted during a parallel
// run: phase boundaries, per-round kernel progress (trim iterations,
// BFS levels, WCC label-propagation rounds), recursive-phase task
// completions, and periodic work-queue depth samples.
//
// Event.Phase carries the int value of the Phase constants above for
// events emitted by Detect/DetectContext (convert with
// Phase(ev.Phase)); the dist package stamps its own phase ids.
type Event = events.Event

// EventType discriminates Event values.
type EventType = events.Type

// The event types delivered to an Observer.
const (
	// EventPhaseStart marks entry into a phase; Event.Phase identifies
	// it.
	EventPhaseStart = events.PhaseStart
	// EventPhaseEnd marks phase completion; Round/Nodes/SCCs carry the
	// phase's cumulative totals.
	EventPhaseEnd = events.PhaseEnd
	// EventTrimRound reports one parallel trim iteration; Nodes is the
	// number of nodes removed that round.
	EventTrimRound = events.TrimRound
	// EventBFSLevel reports one parallel BFS level; Frontier is the
	// level's frontier size.
	EventBFSLevel = events.BFSLevel
	// EventWCCRound reports one WCC label-propagation round.
	EventWCCRound = events.WCCRound
	// EventQueueSample is a periodic recursive-phase queue-depth
	// sample; Queued and Executed carry the instantaneous counters.
	EventQueueSample = events.QueueSample
	// EventTaskDone reports one completed recursive-phase task; Nodes
	// is the size of the SCC it identified.
	EventTaskDone = events.TaskDone
	// EventRetryAttempt reports the distributed pipeline retrying a
	// transient exchange failure; Round is the failed attempt number.
	EventRetryAttempt = events.RetryAttempt
	// EventCheckpointTaken reports a distributed recovery checkpoint;
	// Round is the global superstep at capture.
	EventCheckpointTaken = events.CheckpointTaken
	// EventRollback reports distributed recovery rolling back to the
	// last checkpoint; Nodes is the number of supersteps replayed.
	EventRollback = events.Rollback
	// EventRunMetrics is emitted once at the end of a successful
	// parallel run; Steals, BuffersReused and BytesReused carry the
	// run's scheduler and scratch-arena counters (the full snapshot is
	// Result.Metrics).
	EventRunMetrics = events.RunMetrics
	// EventStalled reports the stall watchdog (Options.StallTimeout)
	// detecting a run with no kernel progress for the configured
	// window, immediately before it aborts the run with ErrStalled;
	// Phase is the wedged phase and Round the run's progress counter at
	// detection. Delivered from the watchdog goroutine.
	EventStalled = events.Stalled
)

// Observer receives progress events from a run. Implementations must
// be safe for concurrent use: recursive-phase events (EventTaskDone,
// EventQueueSample) are delivered from multiple worker goroutines.
// Observe must not block — it runs on the engine's critical path.
//
// A nil Options.Observer costs nothing: the engine skips event
// construction entirely.
type Observer = events.Observer

// ObserverFunc adapts a function to the Observer interface. The
// function must satisfy Observer's concurrency contract.
type ObserverFunc func(Event)

// Observe calls f(ev).
func (f ObserverFunc) Observe(ev Event) { f(ev) }
