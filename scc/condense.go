package scc

import (
	"fmt"

	"repro/graph"
)

// Condensed is the condensation of a graph: one node per SCC, an edge
// between components iff the original graph has an edge between them.
// The condensation is always a DAG, which makes it the standard
// substrate for cycle-aware processing: topological scheduling of
// mutually recursive groups, reachability closure, dependency
// analysis.
type Condensed struct {
	// DAG is the component-level graph; node c is component c.
	DAG *graph.Graph
	// NodeComp maps every original node to its dense component id.
	NodeComp []int32
	// Sizes[c] is the number of original nodes in component c.
	Sizes []int64
	// Topo lists the component ids in a topological order of the DAG
	// (every edge goes from an earlier to a later position).
	Topo []int32
}

// Condense builds the condensation of g from a component labeling (as
// produced by Detect). The labeling is trusted; pass it through
// Validate first if it comes from an untrusted source.
func Condense(g *graph.Graph, comp []int32) (*Condensed, error) {
	if g.NumNodes() != len(comp) {
		return nil, fmt.Errorf("scc: comp length %d != node count %d", len(comp), g.NumNodes())
	}
	dense, k := Renumber(comp)
	sizes := make([]int64, k)
	for _, c := range dense {
		sizes[c]++
	}
	// Deduplicate component edges with a per-source stamp array: for
	// CSR inputs each source's targets arrive grouped, so a stamp per
	// destination component suffices and avoids a map.
	b := graph.NewBuilder(k)
	stamp := make([]int32, k)
	for i := range stamp {
		stamp[i] = -1
	}
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		cv := dense[v]
		for _, w := range g.Out(graph.NodeID(v)) {
			cw := dense[w]
			if cv != cw && stamp[cw] != cv {
				stamp[cw] = cv
				b.AddEdge(cv, cw)
			}
		}
	}
	dag := b.Build()

	// Kahn topological order.
	indeg := make([]int32, k)
	for c := 0; c < k; c++ {
		for _, d := range dag.Out(graph.NodeID(c)) {
			indeg[d]++
		}
	}
	topo := make([]int32, 0, k)
	queue := make([]int32, 0, k)
	for c := int32(0); c < int32(k); c++ {
		if indeg[c] == 0 {
			queue = append(queue, c)
		}
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		topo = append(topo, c)
		for _, d := range dag.Out(graph.NodeID(c)) {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, int32(d))
			}
		}
	}
	if len(topo) != k {
		return nil, fmt.Errorf("scc: labeling is not an SCC decomposition (condensation has a cycle)")
	}
	return &Condensed{DAG: dag, NodeComp: dense, Sizes: sizes, Topo: topo}, nil
}

// Members returns the original nodes of component c, in ascending id
// order.
func (c *Condensed) Members(comp int32) []graph.NodeID {
	out := make([]graph.NodeID, 0, c.Sizes[comp])
	for v, cc := range c.NodeComp {
		if cc == comp {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// Reachable reports, for every component, whether it is reachable from
// the given component in the condensation DAG. Each call allocates a
// fresh closure array; on a hot query path prefer ReachableInto with a
// reused ReachScratch.
func (c *Condensed) Reachable(from int32) []bool {
	var s ReachScratch
	seen := c.ReachableInto(from, &s)
	// Detach from the throwaway scratch so the caller owns the result,
	// preserving Reachable's historical contract.
	out := make([]bool, len(seen))
	copy(out, seen)
	return out
}

// ReachScratch holds the reusable buffers behind ReachableInto. The
// zero value is ready to use; buffers grow to the condensation size on
// first use and are retained across calls. A ReachScratch serves one
// traversal at a time — callers running concurrent queries keep one
// per goroutine (or a pool).
type ReachScratch struct {
	seen  []bool
	stack []graph.NodeID
}

// ReachableInto is Reachable reusing s's buffers: the returned slice
// is owned by s, valid until its next ReachableInto call, and must be
// copied to outlive it. A warm scratch makes the call allocation-free,
// which is what a serving path answering reachability queries per
// request needs.
func (c *Condensed) ReachableInto(from int32, s *ReachScratch) []bool {
	n := c.DAG.NumNodes()
	if cap(s.seen) < n {
		s.seen = make([]bool, n)
	} else {
		s.seen = s.seen[:n]
		clear(s.seen)
	}
	seen := s.seen
	stack := s.stack[:0]
	stack = append(stack, graph.NodeID(from))
	seen[from] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range c.DAG.Out(v) {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	s.stack = stack
	return seen
}
