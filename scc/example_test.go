package scc_test

import (
	"fmt"

	"repro/graph"
	"repro/scc"
)

// ExampleDetect shows basic SCC detection on a small graph.
func ExampleDetect() {
	// 0 ⇄ 1 → 2 (a 2-cycle feeding a sink).
	g := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2},
	})
	res, err := scc.Detect(g, scc.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", res.NumSCCs)
	fmt.Println("0 and 1 together:", res.Comp[0] == res.Comp[1])
	fmt.Println("2 separate:", res.Comp[2] != res.Comp[0])
	// Output:
	// components: 2
	// 0 and 1 together: true
	// 2 separate: true
}

// ExampleDetect_tarjan runs the sequential baseline.
func ExampleDetect_tarjan() {
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}, {From: 2, To: 3},
	})
	res, _ := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
	fmt.Println(res.Algorithm, res.NumSCCs)
	// Output: Tarjan 2
}

// ExampleCondense builds a topological schedule over components.
func ExampleCondense() {
	// Two mutually recursive modules {0,1} feeding module 2.
	g := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2},
	})
	res, _ := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
	c, err := scc.Condense(g, res.Comp)
	if err != nil {
		panic(err)
	}
	fmt.Println("DAG nodes:", c.DAG.NumNodes())
	first := c.Topo[0]
	fmt.Println("first stage size:", c.Sizes[first])
	// Output:
	// DAG nodes: 2
	// first stage size: 2
}

// ExampleSizeHistogram summarizes a decomposition's size structure.
func ExampleSizeHistogram() {
	comp := []int32{7, 7, 7, 3, 3, 9} // sizes 3, 2, 1
	h := scc.SizeHistogram(comp)
	fmt.Println("size-1:", h[1], "size-2:", h[2], "size-3:", h[3])
	// Output: size-1: 1 size-2: 1 size-3: 1
}

// ExampleRenumber converts representatives to dense component ids.
func ExampleRenumber() {
	dense, k := scc.Renumber([]int32{42, 42, 7})
	fmt.Println(dense, k)
	// Output: [0 0 1] 2
}
