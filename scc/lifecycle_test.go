package scc_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/graph"
	"repro/scc"
)

// typedEngineErr reports whether err is one of the errors the engine
// lifecycle contract allows a racing caller to observe.
func typedEngineErr(err error) bool {
	return errors.Is(err, scc.ErrEngineBusy) || errors.Is(err, scc.ErrEngineClosed)
}

// TestEngineCloseRacesDetect closes an engine while callers hammer
// Detect and DetectBatch from several goroutines. The contract under
// race: every call either succeeds or fails with an error wrapping
// ErrEngineBusy or ErrEngineClosed — never a panic, a hang, or an
// untyped error — and once Close returns, every subsequent call fails
// with ErrEngineClosed. Run under -race this also proves the
// mu-serialized result storage is never written concurrently.
func TestEngineCloseRacesDetect(t *testing.T) {
	g := engineGraph()
	for trial := 0; trial < 4; trial++ {
		e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		var (
			wg        sync.WaitGroup
			start     = make(chan struct{})
			sawClosed atomic.Int64
			sawOK     atomic.Int64
		)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				<-start
				for j := 0; j < 50; j++ {
					var err error
					if id%2 == 0 {
						_, err = e.Detect(context.Background(), g)
					} else {
						_, err = e.DetectBatch(context.Background(), []*graph.Graph{g, g})
					}
					switch {
					case err == nil:
						// Results are engine-owned and the next racing
						// call invalidates them, so a racing caller may
						// only observe success, not contents.
						sawOK.Add(1)
					case errors.Is(err, scc.ErrEngineClosed):
						sawClosed.Add(1)
						return
					case !typedEngineErr(err):
						t.Errorf("trial %d caller %d: untyped error under race: %v", trial, id, err)
						return
					}
				}
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			time.Sleep(time.Duration(trial) * 500 * time.Microsecond)
			if err := e.Close(); err != nil {
				t.Errorf("trial %d: Close: %v", trial, err)
			}
		}()
		close(start)
		wg.Wait()
		if _, err := e.Detect(context.Background(), g); !errors.Is(err, scc.ErrEngineClosed) {
			t.Errorf("trial %d: Detect after Close = %v, want ErrEngineClosed", trial, err)
		}
		if _, err := e.DetectBatch(context.Background(), []*graph.Graph{g}); !errors.Is(err, scc.ErrEngineClosed) {
			t.Errorf("trial %d: DetectBatch after Close = %v, want ErrEngineClosed", trial, err)
		}
	}
}

// TestEngineConcurrentClose calls Close from many goroutines at once,
// racing one in-flight Detect: Close is idempotent and every call
// returns nil after the in-flight run finishes.
func TestEngineConcurrentClose(t *testing.T) {
	g := engineGraph()
	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	detectDone := make(chan error, 1)
	go func() {
		_, err := e.Detect(context.Background(), g)
		detectDone <- err
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := <-detectDone; err != nil && !typedEngineErr(err) {
		t.Errorf("in-flight Detect racing Close: untyped error %v", err)
	}
}

// TestEngineDetectBatchRacesDetect pits Detect against DetectBatch on
// one engine with no Close involved: exactly one caller may hold the
// engine at a time, the loser always sees ErrEngineBusy, and the mix
// of successes stays live (no deadlock, no starvation of either path).
func TestEngineDetectBatchRacesDetect(t *testing.T) {
	g := engineGraph()
	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		ok    atomic.Int64
	)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-start
			for j := 0; j < 30; j++ {
				var err error
				if id%2 == 0 {
					_, err = e.Detect(context.Background(), g)
				} else {
					_, err = e.DetectBatch(context.Background(), []*graph.Graph{g})
				}
				if err == nil {
					ok.Add(1)
				} else if !errors.Is(err, scc.ErrEngineBusy) {
					t.Errorf("caller %d: error = %v, want nil or ErrEngineBusy", id, err)
					return
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if ok.Load() == 0 {
		t.Error("no call ever succeeded: the busy fast-path starved everyone")
	}
}
