package scc

import (
	"testing"

	"repro/graph"
)

// shapeGraphs builds adversarial graph shapes that stress different
// code paths: trims (chains), FW-BW partitioning (bowties), Trim2
// (2-cycle chains), WCC (disconnected archipelagos), pivot selection
// (twin giants), and traversal depth (long cycles).
func shapeGraphs() map[string]*graph.Graph {
	shapes := map[string]*graph.Graph{}

	// Long pure cycle: one SCC, traversal depth n.
	{
		const n = 3000
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		}
		shapes["long-cycle"] = b.Build()
	}

	// Chain of 2-cycles: Trim2's favorite food.
	{
		const pairs = 800
		b := graph.NewBuilder(2 * pairs)
		for p := 0; p < pairs; p++ {
			a, c := graph.NodeID(2*p), graph.NodeID(2*p+1)
			b.AddEdge(a, c)
			b.AddEdge(c, a)
			if p > 0 {
				b.AddEdge(graph.NodeID(2*p-1), a)
			}
		}
		shapes["two-cycle-chain"] = b.Build()
	}

	// Twin giants: two equal large SCCs bridged one way — pivot
	// selection can only find one per phase-1 trial.
	{
		const half = 1200
		b := graph.NewBuilder(2 * half)
		for i := 0; i < half; i++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%half))
			b.AddEdge(graph.NodeID(i), graph.NodeID((i+7)%half))
			b.AddEdge(graph.NodeID(half+i), graph.NodeID(half+(i+1)%half))
			b.AddEdge(graph.NodeID(half+i), graph.NodeID(half+(i+11)%half))
		}
		b.AddEdge(0, half)
		shapes["twin-giants"] = b.Build()
	}

	// Bowtie: IN chain → core 3-cycle → OUT chain.
	{
		const arm = 500
		b := graph.NewBuilder(2*arm + 3)
		core := graph.NodeID(2 * arm)
		for i := 0; i < arm-1; i++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
			b.AddEdge(graph.NodeID(arm+i), graph.NodeID(arm+i+1))
		}
		b.AddEdge(graph.NodeID(arm-1), core)
		b.AddEdge(core, core+1)
		b.AddEdge(core+1, core+2)
		b.AddEdge(core+2, core)
		b.AddEdge(core, graph.NodeID(arm))
		shapes["bowtie"] = b.Build()
	}

	// Archipelago: many disconnected triangles (WCC stress).
	{
		const islands = 700
		b := graph.NewBuilder(3 * islands)
		for i := 0; i < islands; i++ {
			x := graph.NodeID(3 * i)
			b.AddEdge(x, x+1)
			b.AddEdge(x+1, x+2)
			b.AddEdge(x+2, x)
		}
		shapes["archipelago"] = b.Build()
	}

	// Complete bipartite orientation: all edges A→B (pure DAG, dense).
	{
		const side = 60
		b := graph.NewBuilder(2 * side)
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				b.AddEdge(graph.NodeID(i), graph.NodeID(side+j))
			}
		}
		shapes["bipartite-dag"] = b.Build()
	}

	// Pure directed path: n singleton SCCs, diameter n-1 — peak trim
	// depth and, when it survives to a sweep, peak traversal depth.
	{
		const n = 2500
		b := graph.NewBuilder(n)
		for i := 0; i < n-1; i++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
		}
		shapes["deep-chain"] = b.Build()
	}

	// Necklace of cycles: untrimmable m-cycles chained head-to-tail.
	// Every cycle is internally a chain, so this is the multi-pivot
	// kernel's vertical-local-search showcase; for the task kernels it
	// is a deep sequential-DFS workload.
	{
		const cycles, m = 15, 80
		b := graph.NewBuilder(cycles * m)
		for c := 0; c < cycles; c++ {
			base := c * m
			for i := 0; i < m; i++ {
				b.AddEdge(graph.NodeID(base+i), graph.NodeID(base+(i+1)%m))
			}
			if c+1 < cycles {
				b.AddEdge(graph.NodeID(base), graph.NodeID(base+m))
			}
		}
		shapes["cycle-necklace"] = b.Build()
	}

	// Lollipop: a cycle with a long tail path. Trim peels the tail one
	// level at a time before the candy is exposed.
	{
		const cyc, stick = 300, 900
		b := graph.NewBuilder(cyc + stick)
		for i := 0; i < cyc; i++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%cyc))
		}
		b.AddEdge(0, graph.NodeID(cyc))
		for i := 0; i < stick-1; i++ {
			b.AddEdge(graph.NodeID(cyc+i), graph.NodeID(cyc+i+1))
		}
		shapes["lollipop"] = b.Build()
	}

	// Star in/out: one hub with edges both ways to every spoke — the
	// whole graph is one SCC through the hub? No: hub↔spoke pairs are
	// 2-cycles through the hub, so everything is mutually reachable →
	// one giant SCC with degree-n hub (pivot heuristic stress).
	{
		const spokes = 2000
		b := graph.NewBuilder(spokes + 1)
		for i := 1; i <= spokes; i++ {
			b.AddEdge(0, graph.NodeID(i))
			b.AddEdge(graph.NodeID(i), 0)
		}
		shapes["hub-scc"] = b.Build()
	}
	return shapes
}

func TestAllAlgorithmsAdversarialShapes(t *testing.T) {
	for name, g := range shapeGraphs() {
		ref, err := Detect(g, Options{Algorithm: Tarjan})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Validate(g, ref.Comp); err != nil {
			t.Fatalf("%s: Tarjan invalid: %v", name, err)
		}
		for _, alg := range allAlgorithms {
			if alg == Tarjan {
				continue
			}
			res, err := Detect(g, Options{Algorithm: alg, Workers: 4, Seed: 7})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, alg, err)
			}
			if !SamePartition(res.Comp, ref.Comp) {
				t.Errorf("%s: %v disagrees with Tarjan", name, alg)
			}
		}
		// The multi-pivot kernel faces every adversarial shape too — the
		// deep ones are precisely its target workload.
		res, err := Detect(g, Options{Algorithm: Method2, Workers: 4, Seed: 7, Kernels: KernelsMultiPivot})
		if err != nil {
			t.Fatalf("%s/multipivot: %v", name, err)
		}
		if !SamePartition(res.Comp, ref.Comp) {
			t.Errorf("%s: multipivot disagrees with Tarjan", name)
		}
	}
}

func TestShapeExpectations(t *testing.T) {
	shapes := shapeGraphs()
	expect := map[string]int64{
		"long-cycle":      1,
		"two-cycle-chain": 800,
		"twin-giants":     2,
		"bowtie":          2*500 + 1,
		"archipelago":     700,
		"bipartite-dag":   120,
		"hub-scc":         1,
		"deep-chain":      2500,
		"cycle-necklace":  15,
		"lollipop":        1 + 900,
	}
	for name, want := range expect {
		res, err := Detect(shapes[name], Options{Algorithm: Tarjan})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumSCCs != want {
			t.Errorf("%s: %d SCCs, want %d", name, res.NumSCCs, want)
		}
	}
}
