package scc_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/dist"
	"repro/gen"
	"repro/graph"
	"repro/scc"
)

// canonical returns the dense renumbering of a labeling: two
// partitions are identical up to label names iff their canonical
// forms are byte-for-byte equal (Renumber assigns ids in order of
// first appearance).
func canonical(t *testing.T, comp []int32) []int32 {
	t.Helper()
	out, _ := scc.Renumber(comp)
	return out
}

func sameCanonical(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// differentialGraphs enumerates the workload matrix: known-answer
// edge cases, oracle graphs with planted decompositions, and the
// small-world topologies the paper targets.
func differentialGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	graphs := map[string]*graph.Graph{
		"empty":     graph.FromEdges(0, nil),
		"single":    graph.FromEdges(1, nil),
		"selfloop":  graph.FromEdges(1, []graph.Edge{{From: 0, To: 0}}),
		"two-cycle": graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 0}}),
		"planted": gen.PlantedSCCs(gen.PlantedConfig{
			Sizes:      gen.PowerLawSizes(200, 2.1, 64, 800, 7),
			IntraExtra: 1.5,
			InterEdges: 1200,
			Shuffle:    true,
			Seed:       7,
		}).Graph,
		"smallworld": gen.SmallWorldSCC(2000, 300, 2.3, 40, 1.2, 11).Graph,
		"rmat-tail": gen.WithTail(gen.RMAT(gen.DefaultRMAT(11, 8, 3)), gen.TailConfig{
			Components:  128,
			Alpha:       2.2,
			MaxSize:     48,
			AttachEdges: 2,
			ChainProb:   0.3,
			Seed:        3,
		}),
		"citation-dag":   gen.CitationDAG(1500, 6, 13),
		"watts-strogatz": gen.WattsStrogatz(1200, 8, 0.1, 17),
	}
	// A handful of unstructured random digraphs for shapes no
	// generator plans for.
	for trial := 0; trial < 4; trial++ {
		n := 1 + rng.Intn(300)
		b := graph.NewBuilder(n)
		for i := 0; i < n*3; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		graphs[fmt.Sprintf("random-%d", trial)] = b.Build()
	}
	return graphs
}

// TestDifferentialAlgorithms runs every graph in the workload matrix
// through Tarjan (reference), Baseline, Method1 and Method2 and
// requires identical partitions up to renumbering.
func TestDifferentialAlgorithms(t *testing.T) {
	algs := []scc.Algorithm{scc.Baseline, scc.Method1, scc.Method2}
	for name, g := range differentialGraphs(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan, Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			want := canonical(t, ref.Comp)
			for _, alg := range algs {
				for _, workers := range []int{1, 4} {
					res, err := scc.Detect(g, scc.Options{
						Algorithm: alg, Workers: workers, Seed: 5, Validate: true,
					})
					if err != nil {
						t.Fatalf("%v/w=%d: %v", alg, workers, err)
					}
					if res.NumSCCs != ref.NumSCCs {
						t.Fatalf("%v/w=%d: NumSCCs %d, want %d", alg, workers, res.NumSCCs, ref.NumSCCs)
					}
					if !sameCanonical(want, canonical(t, res.Comp)) {
						t.Fatalf("%v/w=%d: partition differs from Tarjan", alg, workers)
					}
				}
			}
		})
	}
}

// chainOfTwoCycles builds pairs of mutually-linked nodes chained
// head-to-tail: pair i is the 2-cycle {2i, 2i+1}, with a chain edge
// 2i+1 → 2i+2. Every pair is an SCC, and trimming it only exposes the
// next pair — the adversarial deep-peeling shape where round-based
// trim does Θ(pairs) full rescans while the counter-peeling kernel
// touches each edge once.
func chainOfTwoCycles(pairs int) *graph.Graph {
	b := graph.NewBuilder(2 * pairs)
	for i := 0; i < pairs; i++ {
		a, bb := graph.NodeID(2*i), graph.NodeID(2*i+1)
		b.AddEdge(a, bb)
		b.AddEdge(bb, a)
		if i+1 < pairs {
			b.AddEdge(bb, graph.NodeID(2*i+2))
		}
	}
	return b.Build()
}

// TestDifferentialKernels runs every parallel algorithm under all
// three kernel sets — the legacy round-based Par-Trim/Par-WCC, the
// work-efficient worklist kernels, and the multi-pivot reachability
// kernel — and requires canonically identical partitions against
// Tarjan, on random, planted-oracle, deep-peeling and high-diameter
// graphs. The distributed pipeline is held to the same bar under
// every Kernels setting.
func TestDifferentialKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	graphs := map[string]*graph.Graph{
		"chain-of-2-cycles": chainOfTwoCycles(400),
		// High-diameter shapes: the multi-pivot kernel's vertical local
		// searches must not change the answer, only the wave count.
		"deep-chain":      chainGraph(1200),
		"cycle-of-chains": cycleOfChains(8, 150),
		"lollipop":        lollipop(200, 600),
		"planted": gen.PlantedSCCs(gen.PlantedConfig{
			Sizes:      gen.PowerLawSizes(180, 2.1, 60, 700, 21),
			IntraExtra: 1.2,
			InterEdges: 1000,
			Shuffle:    true,
			Seed:       21,
		}).Graph,
		"rmat-tail": gen.WithTail(gen.RMAT(gen.DefaultRMAT(10, 8, 5)), gen.TailConfig{
			Components:  96,
			Alpha:       2.2,
			MaxSize:     40,
			AttachEdges: 2,
			ChainProb:   0.4,
			Seed:        5,
		}),
	}
	for trial := 0; trial < 3; trial++ {
		n := 1 + rng.Intn(250)
		b := graph.NewBuilder(n)
		for i := 0; i < n*3; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		graphs[fmt.Sprintf("random-%d", trial)] = b.Build()
	}

	kernels := []scc.Kernels{scc.KernelsWorklist, scc.KernelsLegacy, scc.KernelsMultiPivot}
	algs := []scc.Algorithm{scc.Baseline, scc.Method1, scc.Method2}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			ref, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan, Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			want := canonical(t, ref.Comp)
			for _, alg := range algs {
				for _, kern := range kernels {
					for _, workers := range []int{1, 4} {
						res, err := scc.Detect(g, scc.Options{
							Algorithm: alg, Workers: workers, Seed: 5,
							Kernels: kern, Validate: true,
						})
						if err != nil {
							t.Fatalf("%v/%v/w=%d: %v", alg, kern, workers, err)
						}
						if res.NumSCCs != ref.NumSCCs {
							t.Fatalf("%v/%v/w=%d: NumSCCs %d, want %d", alg, kern, workers, res.NumSCCs, ref.NumSCCs)
						}
						if !sameCanonical(want, canonical(t, res.Comp)) {
							t.Fatalf("%v/%v/w=%d: partition differs from Tarjan", alg, kern, workers)
						}
					}
				}
			}
			for _, kern := range kernels {
				dres := dist.Run(g, dist.Options{Workers: 3, Seed: 9, Kernels: kern})
				if dres.NumSCCs != ref.NumSCCs {
					t.Fatalf("dist/%v: NumSCCs %d, want %d", kern, dres.NumSCCs, ref.NumSCCs)
				}
				if !sameCanonical(want, canonical(t, dres.Comp)) {
					t.Fatalf("dist/%v: partition differs from Tarjan", kern)
				}
			}
		})
	}
}

// TestDifferentialPlantedOracle checks Method2 against the planted
// ground truth directly (not just against Tarjan): the canonical form
// of the detected partition must equal the canonical form of the
// planted component map.
func TestDifferentialPlantedOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p := gen.PlantedSCCs(gen.PlantedConfig{
			Sizes:      gen.PowerLawSizes(150, 2.2, 50, 600, seed),
			IntraExtra: 1.0,
			InterEdges: 900,
			Shuffle:    true,
			Seed:       seed,
		})
		res, err := scc.Detect(p.Graph, scc.Options{Algorithm: scc.Method2, Workers: 4, Seed: seed, Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumSCCs != int64(p.NumComps) {
			t.Fatalf("seed %d: NumSCCs %d, want %d planted", seed, res.NumSCCs, p.NumComps)
		}
		truth := make([]int32, len(p.Comp))
		for v, c := range p.Comp {
			truth[v] = int32(c)
		}
		if !sameCanonical(canonical(t, truth), canonical(t, res.Comp)) {
			t.Fatalf("seed %d: partition differs from planted ground truth", seed)
		}
	}
}

// TestDifferentialDistributed runs the distributed pipeline over both
// transports against the Tarjan reference on the same workload matrix.
// TCP runs are restricted to the non-trivial graphs to keep socket
// churn down; the in-memory transport covers everything.
func TestDifferentialDistributed(t *testing.T) {
	for name, g := range differentialGraphs(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
			if err != nil {
				t.Fatal(err)
			}
			want := canonical(t, ref.Comp)

			dres := dist.Run(g, dist.Options{Workers: 3, Seed: 9})
			if dres.NumSCCs != ref.NumSCCs {
				t.Fatalf("mem transport: NumSCCs %d, want %d", dres.NumSCCs, ref.NumSCCs)
			}
			if !sameCanonical(want, canonical(t, dres.Comp)) {
				t.Fatal("mem transport: partition differs from Tarjan")
			}

			if g.NumNodes() < 100 {
				return // TCP mesh setup dwarfs the work; mem covered it
			}
			tr, err := dist.NewTCPTransport(3)
			if err != nil {
				t.Fatal(err)
			}
			tres, err := dist.RunTransport(g, dist.Options{Workers: 3, Seed: 9, Transport: tr})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			if tres.NumSCCs != ref.NumSCCs {
				t.Fatalf("tcp transport: NumSCCs %d, want %d", tres.NumSCCs, ref.NumSCCs)
			}
			if !sameCanonical(want, canonical(t, tres.Comp)) {
				t.Fatal("tcp transport: partition differs from Tarjan")
			}
		})
	}
}
