package scc

import (
	"time"

	"repro/internal/chaos"
)

// ChaosSites lists the failure-injection site names: "trim" (one hit
// per Par-Trim round, or per counter-peeling counting pass under
// KernelsWorklist), "bfs" (per FW/BW BFS level), "trim2" (per Trim2
// sweep), "wcc" (per Par-WCC propagation round, or per union-find
// pass), "task" (per phase-2 recursive FW-BW task), "peel" (inside the
// counter-peeling trim kernel's drain loop, per wave or per frontier
// chunk), "uf" (inside the union-find WCC kernel's hook loops, per
// chunk), "reach" (inside the multi-pivot reachability kernel, once
// per concurrent wave — per frontier chunk when parallel), and
// "condense" (once per condensation build on the serving path's
// rebuild — internal/server — after detection succeeds), "wal" (once
// per write-ahead-log append on the durability path —
// internal/durable), and "snapshot" (once per durable snapshot
// write), and "incr" (inside the incremental SCC maintainer —
// internal/incr — once per commit and per staged merge during a cycle
// collapse). The "peel" and "uf" sites fire only under KernelsWorklist
// and "reach" only under KernelsMultiPivot; "condense", "incr", "wal",
// and "snapshot" are never hit by Detect itself, only by the server's
// rebuild and durability paths.
func ChaosSites() []string {
	sites := chaos.Sites()
	names := make([]string, len(sites))
	for i, s := range sites {
		names[i] = s.String()
	}
	return names
}

// ChaosConfig configures deterministic failure injection into the
// parallel engine (Baseline, Method1, Method2, FWBW), for robustness
// testing — the in-memory mirror of dist.FaultInjector. Failures fire
// at hit ordinals rather than probabilities: a kernel's hit sequence
// is already deterministic for a given (graph, options) pair, so
// "panic on the 2nd BFS level" reproduces the identical failure every
// run. Sequential algorithms never hit an injection site.
//
// Keys are site names (see ChaosSites); unknown names are rejected by
// option validation. Ordinals are 1-based; entries <= 0 are invalid.
type ChaosConfig struct {
	// PanicAt panics on the named site's N-th hit. The run returns a
	// *PanicError wrapping the injected value.
	PanicAt map[string]int64
	// StallAt stalls the named site's N-th hit: the hitting worker
	// blocks until StallFor elapses (then resumes normally, modeling a
	// slow round) or until the run is torn down around it (cancellation
	// or watchdog abort), whereupon it unwinds.
	StallAt map[string]int64
	// StallFor bounds each stall; 0 stalls until teardown — a true
	// wedge, which only a context deadline or Options.StallTimeout can
	// break.
	StallFor time.Duration
}

// validate checks every site name and ordinal, returning an
// *OptionError naming the offending entry.
func (c *ChaosConfig) validate() error {
	if c == nil {
		return nil
	}
	for field, m := range map[string]map[string]int64{"Chaos.PanicAt": c.PanicAt, "Chaos.StallAt": c.StallAt} {
		for name, n := range m {
			if _, err := chaos.ParseSite(name); err != nil {
				return &OptionError{Field: field, Value: name, Reason: "unknown chaos site"}
			}
			if n < 1 {
				return &OptionError{Field: field, Value: n, Reason: "hit ordinal must be >= 1"}
			}
		}
	}
	if c.StallFor < 0 {
		return &OptionError{Field: "Chaos.StallFor", Value: c.StallFor, Reason: "must be >= 0"}
	}
	return nil
}

// injector builds the per-run injector; validate must have passed.
func (c *ChaosConfig) injector() *chaos.Injector {
	if c == nil {
		return nil
	}
	cfg := chaos.Config{StallFor: c.StallFor}
	if len(c.PanicAt) > 0 {
		cfg.PanicAt = make(map[chaos.Site]int64, len(c.PanicAt))
		for name, n := range c.PanicAt {
			s, _ := chaos.ParseSite(name)
			cfg.PanicAt[s] = n
		}
	}
	if len(c.StallAt) > 0 {
		cfg.StallAt = make(map[chaos.Site]int64, len(c.StallAt))
		for name, n := range c.StallAt {
			s, _ := chaos.ParseSite(name)
			cfg.StallAt[s] = n
		}
	}
	return chaos.New(cfg)
}

// ParseChaosSpec parses the "site[:n][,site[:n]...]" flag syntax used
// by sccrun's -chaos-panic and -chaos-stall into a ChaosConfig map: a
// bare site name means its first hit. Returns nil for empty input.
func ParseChaosSpec(spec string) (map[string]int64, error) {
	m, err := chaos.ParseSpec(spec)
	if err != nil || m == nil {
		return nil, err
	}
	out := make(map[string]int64, len(m))
	for s, n := range m {
		out[s.String()] = n
	}
	return out, nil
}
