package scc

import (
	"math/rand"
	"testing"

	"repro/gen"
	"repro/graph"
)

func TestCondenseSmall(t *testing.T) {
	// A: {0,1} cycle → B: {2} → C: {3,4} cycle; extra parallel edges.
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 0},
		{From: 1, To: 2}, {From: 0, To: 2},
		{From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 3}})
	res, err := Detect(g, Options{Algorithm: Tarjan})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Condense(g, res.Comp)
	if err != nil {
		t.Fatal(err)
	}
	if c.DAG.NumNodes() != 3 {
		t.Fatalf("condensation nodes = %d", c.DAG.NumNodes())
	}
	if c.DAG.NumEdges() != 2 {
		t.Fatalf("condensation edges = %d (parallel edges not deduped?)", c.DAG.NumEdges())
	}
	// Sizes: 2, 1, 2 in some order; total 5.
	var total int64
	for _, s := range c.Sizes {
		total += s
	}
	if total != 5 {
		t.Fatalf("sizes %v", c.Sizes)
	}
	// Topological order respects edges.
	pos := make(map[int32]int)
	for i, comp := range c.Topo {
		pos[comp] = i
	}
	for v := 0; v < c.DAG.NumNodes(); v++ {
		for _, w := range c.DAG.Out(graph.NodeID(v)) {
			if pos[int32(v)] >= pos[int32(w)] {
				t.Fatalf("topo order violates edge %d→%d", v, w)
			}
		}
	}
}

func TestCondenseRejectsBadLabeling(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 0}})
	// Splitting a 2-cycle creates a cyclic condensation.
	if _, err := Condense(g, []int32{0, 1}); err == nil {
		t.Fatal("cyclic condensation accepted")
	}
	if _, err := Condense(g, []int32{0}); err == nil {
		t.Fatal("wrong-length labeling accepted")
	}
}

func TestCondenseMembersAndReachable(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2}, {From: 3, To: 0}})
	res, _ := Detect(g, Options{Algorithm: Tarjan})
	c, err := Condense(g, res.Comp)
	if err != nil {
		t.Fatal(err)
	}
	pair := c.NodeComp[0]
	members := c.Members(pair)
	if len(members) != 2 || members[0] != 0 || members[1] != 1 {
		t.Fatalf("members of {0,1} = %v", members)
	}
	// From node 3's component everything is reachable.
	reach := c.Reachable(c.NodeComp[3])
	for comp, ok := range reach {
		if !ok {
			t.Fatalf("component %d not reachable from 3's component", comp)
		}
	}
	// From node 2's component only itself.
	reach2 := c.Reachable(c.NodeComp[2])
	count := 0
	for _, ok := range reach2 {
		if ok {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d components reachable from sink", count)
	}
}

func TestCondenseRandomAgainstReachability(t *testing.T) {
	// Property: u's component reaches v's component in the DAG iff u
	// reaches v in the original graph (checked on small graphs).
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.Build()
		res, _ := Detect(g, Options{Algorithm: Tarjan})
		c, err := Condense(g, res.Comp)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			reach := nodeReach(g, graph.NodeID(u))
			creach := c.Reachable(c.NodeComp[u])
			for v := 0; v < n; v++ {
				if reach[v] != creach[c.NodeComp[v]] {
					t.Fatalf("trial %d: reach(%d,%d)=%v but condensation says %v",
						trial, u, v, reach[v], creach[c.NodeComp[v]])
				}
			}
		}
	}
}

func nodeReach(g *graph.Graph, src graph.NodeID) []bool {
	seen := make([]bool, g.NumNodes())
	seen[src] = true
	stack := []graph.NodeID{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range g.Out(v) {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

func TestCondenseLargeGraph(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(12, 8, 4))
	res, _ := Detect(g, Options{Algorithm: Method2, Seed: 1})
	c, err := Condense(g, res.Comp)
	if err != nil {
		t.Fatal(err)
	}
	if int64(c.DAG.NumNodes()) != res.NumSCCs {
		t.Fatalf("condensation nodes %d != NumSCCs %d", c.DAG.NumNodes(), res.NumSCCs)
	}
	if len(c.Topo) != c.DAG.NumNodes() {
		t.Fatal("topo order incomplete")
	}
}

// TestReachableInto checks the scratch-reusing variant agrees with
// Reachable across reuses (including shrinking to a smaller DAG) and
// that a warm scratch allocates nothing.
func TestReachableInto(t *testing.T) {
	big := gen.RMAT(gen.DefaultRMAT(10, 8, 7))
	res, err := Detect(big, Options{Algorithm: Tarjan})
	if err != nil {
		t.Fatal(err)
	}
	cBig, err := Condense(big, res.Comp)
	if err != nil {
		t.Fatal(err)
	}
	small := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2}, {From: 3, To: 0}})
	resS, _ := Detect(small, Options{Algorithm: Tarjan})
	cSmall, err := Condense(small, resS.Comp)
	if err != nil {
		t.Fatal(err)
	}

	var s ReachScratch
	for _, c := range []*Condensed{cBig, cSmall, cBig} {
		for from := int32(0); from < int32(c.DAG.NumNodes()); from += 7 {
			got := c.ReachableInto(from, &s)
			want := c.Reachable(from)
			if len(got) != len(want) {
				t.Fatalf("length %d != %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("from %d: component %d: got %v want %v", from, i, got[i], want[i])
				}
			}
		}
	}

	// Steady state: a warm scratch must not allocate.
	warm := &ReachScratch{}
	c := cBig
	c.ReachableInto(0, warm)
	allocs := testing.AllocsPerRun(50, func() {
		c.ReachableInto(0, warm)
	})
	if allocs != 0 {
		t.Fatalf("warm ReachableInto allocates %.0f/op, want 0", allocs)
	}
}
