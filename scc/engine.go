package scc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/graph"
	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/verify"
)

// Engine is a reusable detection runtime for a request stream: New
// validates the Options once and pins the worker gang, scratch arena
// and work queue for the engine's lifetime, and Detect reuses all of
// it, so a warm engine's steady-state run performs zero allocations
// for graphs at or below its high-water node count. Use an Engine when
// detection runs repeatedly (a serving path, a benchmark sweep); use
// the one-shot Detect/DetectContext functions — thin wrappers over a
// throwaway Engine — when it runs once.
//
// Concurrency: an Engine serves one run at a time. A Detect or
// DetectBatch that arrives while another is in flight fails fast with
// an error wrapping ErrEngineBusy (callers that want queueing hold
// their own mutex). Close waits for the in-flight run, then releases
// the worker gang; afterwards every call fails with ErrEngineClosed.
//
// Result ownership: the *Result returned by Detect is engine-owned and
// valid only until the next Detect/DetectBatch/Close on this engine —
// copy what must outlive it. (Results from the one-shot wrappers keep
// their documented forever-valid semantics, since their engine is
// discarded.) DetectBatch results are caller-owned.
type Engine struct {
	mu     sync.Mutex
	opts   Options
	core   *core.Engine // nil for sequential algorithms until DetectBatch pins a gang
	res    Result       // reused result storage, rewritten per run
	closed bool
}

// New validates opts once and returns an Engine configured with them.
// Validation here is the single site for both the engine and one-shot
// paths: an invalid field fails with an *OptionError (wrapping
// ErrInvalidOption) before any resource is pinned. For the parallel
// algorithms (Baseline, Method1, Method2, FWBW) the worker gang and
// scratch arena are created immediately; sequential algorithms pin a
// gang only if DetectBatch needs one. Close releases the resources.
//
// The Options fields Observer, MemoryLimit and Chaos act as
// engine-level defaults that per-run RunOptions (WithObserver,
// WithMemoryLimit, WithChaos) override without copying Options.
func New(opts Options) (*Engine, error) {
	e, err := newEngine(opts)
	if err != nil {
		return nil, detectErr("new", err)
	}
	return e, nil
}

// newEngine is New without the error envelope, so DetectContext can
// wrap validation failures with its historical Op ("detect").
func newEngine(opts Options) (*Engine, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts}
	switch opts.Algorithm {
	case Baseline, Method1, Method2, FWBW:
		e.core = core.NewEngine(coreAlgorithm(opts.Algorithm), coreOptions(opts))
	}
	return e, nil
}

// Close releases the engine's pinned resources (the worker gang's
// goroutines join before it returns — an engine leaks nothing). It
// waits for an in-flight run to finish first. Idempotent; always nil.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	if e.core != nil {
		e.core.Close()
	}
	return nil
}

// Detect decomposes g on the engine's pinned runtime. Semantics match
// DetectContext — cooperative cancellation, typed errors, the same
// algorithm set — with per-run knobs supplied as RunOptions instead of
// Options copies. It fails fast with ErrEngineBusy if another run is
// in flight and ErrEngineClosed after Close (or after a watchdog
// force-abort destroyed the gang, which closes the engine). The
// returned Result is engine-owned and valid until the next call.
func (e *Engine) Detect(ctx context.Context, g *graph.Graph, runOpts ...RunOption) (*Result, error) {
	if !e.mu.TryLock() {
		return nil, detectErr("detect", ErrEngineBusy)
	}
	defer e.mu.Unlock()
	if e.closed {
		return nil, detectErr("detect", ErrEngineClosed)
	}
	return e.detectLocked(ctx, g, runOpts)
}

func (e *Engine) detectLocked(ctx context.Context, g *graph.Graph, runOpts []RunOption) (*Result, error) {
	if g == nil {
		return nil, detectErr("detect", ErrNilGraph)
	}
	// The zero-RunOption fast path must not materialize a heap
	// runConfig: applying options is fenced off so rc stays on the
	// stack when runOpts is empty (the steady-state shape the
	// zero-alloc pin covers).
	var rc runConfig
	if len(runOpts) > 0 {
		rc = applyRunOpts(runOpts)
	}
	if err := rc.validate(); err != nil {
		return nil, detectErr("detect", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledErr("detect", err)
	}
	opts := e.opts
	switch opts.Algorithm {
	case Tarjan:
		start := time.Now()
		comp, n := seq.Tarjan(g)
		e.res = Result{Comp: comp, NumSCCs: int64(n), Algorithm: Tarjan, Total: time.Since(start)}
	case Kosaraju:
		start := time.Now()
		comp, n := seq.Kosaraju(g)
		e.res = Result{Comp: comp, NumSCCs: int64(n), Algorithm: Kosaraju, Total: time.Since(start)}
	case Gabow:
		start := time.Now()
		comp, n := seq.Gabow(g)
		e.res = Result{Comp: comp, NumSCCs: int64(n), Algorithm: Gabow, Total: time.Since(start)}
	case OBF, Coloring, MultiStep:
		e.res = *runExtension(g, opts)
	case Baseline, Method1, Method2, FWBW:
		// Per-run overrides are resolved against the engine-level
		// defaults here and passed by value — no Options copy reaches
		// the core engine.
		ov := core.Overrides{
			Observer:       opts.Observer,
			HasObserver:    true,
			MemoryLimit:    opts.MemoryLimit,
			HasMemoryLimit: true,
			HasChaos:       true,
		}
		if rc.obsSet {
			ov.Observer = rc.observer
		}
		if rc.memSet {
			ov.MemoryLimit = rc.memLimit
		}
		chaosCfg := opts.Chaos
		if rc.chaosSet {
			chaosCfg = rc.chaos
		}
		if chaosCfg != nil {
			// A fresh injector per run: hit ordinals are per-run, so a
			// shared injector would drift across a request stream.
			ov.Chaos = chaosCfg.injector()
		}
		r, err := e.core.Run(ctx, g, ov)
		if err != nil {
			if e.core.Dead() {
				// The watchdog force-abandoned the gang barriers; the
				// runtime cannot be reused. Fold the engine into the
				// closed state so subsequent calls fail typed.
				e.closed = true
				e.core.Close()
			}
			return nil, engineErr("detect", err)
		}
		fillFromCore(&e.res, opts.Algorithm, r)
	default:
		// Unreachable: validateOptions rejects unknown algorithms.
		return nil, detectErr("detect",
			&OptionError{Field: "Algorithm", Value: opts.Algorithm, Reason: "unknown algorithm"})
	}
	if opts.Validate {
		if err := verify.CheckDecomposition(g, e.res.Comp); err != nil {
			return nil, detectErr("validate", fmt.Errorf("%w: %w", ErrValidation, err))
		}
	}
	return &e.res, nil
}

// BatchResult is one graph's outcome from Engine.DetectBatch.
type BatchResult struct {
	// Comp maps each node to a dense component id in [0, NumSCCs).
	// Unlike Detect's Comp, ids are dense indices rather than
	// representative node ids (batch entries run sequential Tarjan);
	// the partition is identical and SamePartition-comparable.
	Comp []int32
	// NumSCCs is the number of strongly connected components.
	NumSCCs int64
	// Err is the per-graph failure (an error wrapping ErrNilGraph for
	// a nil slice entry); nil for a successful entry.
	Err error
}

// DetectBatch decomposes every graph in the slice on one pinned worker
// gang: graphs are distributed across the engine's workers in
// dynamically claimed chunks of the engine's task batch size K, giving
// cross-graph parallelism — the high-throughput shape for a stream of
// small graphs, where per-graph parallel detection would be all
// barrier overhead. Results are per-graph and caller-owned; a nil
// slice entry yields a per-entry Err wrapping ErrNilGraph rather than
// failing the batch.
//
// Cancellation is cooperative at graph granularity; a canceled batch
// returns the typed cancellation error and discards partial results.
// Busy and closed engines fail exactly like Detect. An engine built
// for a sequential algorithm pins its gang on first DetectBatch.
func (e *Engine) DetectBatch(ctx context.Context, graphs []*graph.Graph) ([]BatchResult, error) {
	if !e.mu.TryLock() {
		return nil, detectErr("batch", ErrEngineBusy)
	}
	defer e.mu.Unlock()
	if e.closed {
		return nil, detectErr("batch", ErrEngineClosed)
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledErr("batch", err)
	}
	if e.core == nil {
		// Sequential-algorithm engine: batch still wants the gang. The
		// core algorithm only shapes defaults (K); batch entries run
		// sequential Tarjan regardless.
		e.core = core.NewEngine(core.Method2, coreOptions(e.opts))
	}
	rs, err := e.core.RunBatch(ctx, graphs)
	if err != nil {
		return nil, engineErr("batch", err)
	}
	out := make([]BatchResult, len(rs))
	for i, r := range rs {
		out[i] = BatchResult{Comp: r.Comp, NumSCCs: r.NumSCCs}
		if r.Err != nil {
			if errors.Is(r.Err, core.ErrNilBatchGraph) {
				out[i].Err = detectErr("batch", ErrNilGraph)
			} else {
				out[i].Err = canceledErr("batch", r.Err)
			}
		}
	}
	return out, nil
}

// RunOption is a per-run knob for Engine.Detect. RunOptions override
// the engine-level defaults carried by the corresponding Options
// fields (Observer, MemoryLimit, Chaos) for a single run, without
// copying Options structs; runs without the option fall back to the
// engine default.
type RunOption func(*runConfig)

// applyRunOpts folds the options into a runConfig. Kept out of
// detectLocked so the config only escapes to the heap on runs that
// actually pass options.
func applyRunOpts(runOpts []RunOption) runConfig {
	var rc runConfig
	for _, o := range runOpts {
		o(&rc)
	}
	return rc
}

type runConfig struct {
	observer Observer
	obsSet   bool
	memLimit int64
	memSet   bool
	chaos    *ChaosConfig
	chaosSet bool
}

// validate applies option validation to the per-run values — the same
// single-site rules New enforces, with the RunOption name as the
// *OptionError field.
func (rc *runConfig) validate() error {
	if rc.memSet && rc.memLimit < 0 {
		return &OptionError{Field: "WithMemoryLimit", Value: rc.memLimit, Reason: "must be >= 0"}
	}
	if rc.chaosSet {
		return rc.chaos.validate()
	}
	return nil
}

// WithObserver streams this run's progress events to o, overriding the
// engine-level Options.Observer. WithObserver(nil) silences an
// engine-level observer for the run.
func WithObserver(o Observer) RunOption {
	return func(rc *runConfig) { rc.observer, rc.obsSet = o, true }
}

// WithMemoryLimit bounds this run's estimated engine + scratch
// footprint in bytes, overriding the engine-level Options.MemoryLimit;
// see that field for the degradation ladder. On a warm engine the
// budget also covers scratch retained from earlier runs: a high-water
// footprint above the limit is shed (and re-grown to this run's size)
// before the run starts. WithMemoryLimit(0) disables the budget for
// the run.
func WithMemoryLimit(bytes int64) RunOption {
	return func(rc *runConfig) { rc.memLimit, rc.memSet = bytes, true }
}

// WithChaos injects deterministic failures into this run's kernels,
// overriding the engine-level Options.Chaos; see ChaosConfig. Hit
// ordinals are counted per run. WithChaos(nil) disables injection for
// the run.
func WithChaos(c *ChaosConfig) RunOption {
	return func(rc *runConfig) { rc.chaos, rc.chaosSet = c, true }
}

// fillFromCore writes a core result into dst, reusing dst's slice
// capacity so a warm engine's steady-state run allocates nothing. dst
// aliases the core engine's Comp array — the engine-ownership contract
// on Engine.Detect results exists exactly because of this.
func fillFromCore(dst *Result, a Algorithm, r *core.Result) {
	taskLog, taskTrace := dst.TaskLog[:0], dst.TaskTrace[:0]
	*dst = Result{
		Comp:          r.Comp,
		NumSCCs:       r.NumSCCs,
		Algorithm:     a,
		Total:         r.Total,
		Queue:         QueueStats{PeakReady: r.Queue.PeakReady, Total: r.Queue.Total},
		GiantSCC:      r.GiantSCC,
		Phase1Trials:  r.Phase1Trials,
		Phase1Levels:  r.Phase1Levels,
		WCCComponents: r.WCCComponents,
		WCCRounds:     r.WCCRounds,
		InitialTasks:  r.InitialTasks,
		Metrics: MetricsSnapshot{
			TrimRounds:     r.Metrics.TrimRounds,
			TrimmedNodes:   r.Metrics.TrimmedNodes,
			Trim2Pairs:     r.Metrics.Trim2Pairs,
			BFSLevels:      r.Metrics.BFSLevels,
			FrontierNodes:  r.Metrics.FrontierNodes,
			FrontierPeak:   r.Metrics.FrontierPeak,
			BitmapLevels:   r.Metrics.BitmapLevels,
			WCCRounds:      r.Metrics.WCCRounds,
			TrimPushes:     r.Metrics.TrimPushes,
			PeelDepth:      r.Metrics.PeelDepth,
			UFUnions:       r.Metrics.UFUnions,
			UFFindHops:     r.Metrics.UFFindHops,
			SampledSkips:   r.Metrics.SampledSkips,
			PivotBatches:   r.Metrics.PivotBatches,
			ReachWaves:     r.Metrics.ReachWaves,
			ReachClaims:    r.Metrics.ReachClaims,
			LocalCollapses: r.Metrics.LocalCollapses,
			Tasks:          r.Metrics.Tasks,
			Steals:         r.Metrics.Steals,
			BuffersReused:  r.Metrics.BuffersReused,
			BytesReused:    r.Metrics.BytesReused,
			DegradedMode:   r.Metrics.DegradedMode,
		},
	}
	for p := 0; p < int(NumPhases); p++ {
		cp := r.Phases[p]
		dst.Phases[p] = PhaseStats{Time: cp.Time, Nodes: cp.Nodes, SCCs: cp.SCCs, Rounds: cp.Rounds}
	}
	for _, rec := range r.TaskLog {
		taskLog = append(taskLog, TaskRecord(rec))
	}
	dst.TaskLog = taskLog
	for _, tr := range r.TaskTrace {
		taskTrace = append(taskTrace, TaskTrace(tr))
	}
	dst.TaskTrace = taskTrace
}
