package scc_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/gen"
	"repro/graph"
	"repro/scc"
)

// chaosGraph builds a graph whose Method2 run exercises every
// injection site: the R-MAT core yields trim rounds, BFS levels and
// Trim2 sweeps, and the power-law tail guarantees survivors into the
// WCC and recursive phases.
func chaosGraph() *graph.Graph {
	return gen.WithTail(gen.RMAT(gen.DefaultRMAT(13, 8, 5)), gen.TailConfig{
		Components:  512,
		Alpha:       2.2,
		MaxSize:     64,
		AttachEdges: 2,
		ChainProb:   0.4,
		Seed:        5,
	})
}

// TestChaosPanicMatrix injects a panic at every site, at one and at
// four workers, and checks the failure envelope each time: the run
// returns a typed *PanicError (never crashes), leaks no goroutines,
// and the engine is immediately reusable — a follow-up clean run
// produces the Tarjan partition.
func TestChaosPanicMatrix(t *testing.T) {
	g := chaosGraph()
	want, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	for _, site := range scc.ChaosSites() {
		// Each site runs under every kernel set that can actually hit
		// it: "peel"/"uf" exist only inside the counter-peeling kernels
		// (which both the worklist and multi-pivot sets use for
		// trim/WCC), "reach" only inside the multi-pivot sweep, and
		// "bfs" only in the level-synchronous phase-1 the multi-pivot
		// kernel replaces. "condense" and "incr" live on the serving
		// path (internal/server, internal/incr), and "wal"/"snapshot"
		// on the durability path (internal/durable) — none of those is
		// inside Detect, so a plain run never hits them.
		if site == "condense" || site == "wal" || site == "snapshot" || site == "incr" {
			continue
		}
		kernels := []scc.Kernels{scc.KernelsWorklist, scc.KernelsLegacy, scc.KernelsMultiPivot}
		switch site {
		case "peel", "uf":
			kernels = []scc.Kernels{scc.KernelsWorklist, scc.KernelsMultiPivot}
		case "reach":
			kernels = []scc.Kernels{scc.KernelsMultiPivot}
		case "bfs":
			kernels = []scc.Kernels{scc.KernelsWorklist, scc.KernelsLegacy}
		}
		for _, kern := range kernels {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/w%d", site, kern, workers), func(t *testing.T) {
					res, err := scc.Detect(g, scc.Options{
						Algorithm: scc.Method2,
						Workers:   workers,
						Seed:      5,
						Kernels:   kern,
						Chaos:     &scc.ChaosConfig{PanicAt: map[string]int64{site: 1}},
					})
					if res != nil {
						t.Fatalf("panicking run returned a result: %+v", res)
					}
					var pe *scc.PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("want *PanicError, got %v", err)
					}
					if !strings.Contains(fmt.Sprint(pe.Value), "chaos: injected panic at "+site) {
						t.Fatalf("panic value %v does not name site %s", pe.Value, site)
					}
					if len(pe.Stack) == 0 {
						t.Fatal("PanicError carries no stack")
					}
					var se *scc.Error
					if !errors.As(err, &se) || se.Op != "detect" {
						t.Fatalf("want *scc.Error with Op=detect, got %v", err)
					}
					waitGoroutines(t, base)

					// The engine must be reusable after the panic tore a run
					// down: same graph, same options, no chaos.
					clean, err := scc.Detect(g, scc.Options{
						Algorithm: scc.Method2, Workers: workers, Seed: 5, Kernels: kern,
					})
					if err != nil {
						t.Fatalf("clean run after panic failed: %v", err)
					}
					if !scc.SamePartition(clean.Comp, want.Comp) {
						t.Fatal("clean run after panic diverges from Tarjan")
					}
				})
			}
		}
	}
}

// TestChaosReachOrdinalsOnEngine drives the "reach" site at exact hit
// ordinals through one pinned multi-pivot engine: every sabotaged run
// fails with a typed *PanicError naming the site (the sweep wrote only
// its stamped claim tables, so there is no partial publication to
// unwind), and the SAME engine instance then serves a clean run whose
// partition matches Tarjan.
func TestChaosReachOrdinalsOnEngine(t *testing.T) {
	g := chaosGraph()
	want, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := scc.New(scc.Options{
		Algorithm: scc.Method2, Workers: 2, Seed: 5, Kernels: scc.KernelsMultiPivot,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	for _, ordinal := range []int64{1, 2, 4} {
		res, err := eng.Detect(ctx, g, scc.WithChaos(&scc.ChaosConfig{
			PanicAt: map[string]int64{"reach": ordinal},
		}))
		if res != nil {
			t.Fatalf("reach:%d: panicking run returned a result", ordinal)
		}
		var pe *scc.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("reach:%d: want *PanicError, got %v", ordinal, err)
		}
		if !strings.Contains(fmt.Sprint(pe.Value), "chaos: injected panic at reach") {
			t.Fatalf("reach:%d: panic value %v does not name the site", ordinal, pe.Value)
		}
		clean, err := eng.Detect(ctx, g)
		if err != nil {
			t.Fatalf("clean run after reach:%d panic: %v", ordinal, err)
		}
		if !scc.SamePartition(clean.Comp, want.Comp) {
			t.Fatalf("clean run after reach:%d panic diverges from Tarjan", ordinal)
		}
	}
}

// TestChaosReachStall wedges the second reach wave forever: the
// watchdog sees no kernel progress and aborts with ErrStalled, nothing
// leaks, and a fresh clean run still matches Tarjan.
func TestChaosReachStall(t *testing.T) {
	g := chaosGraph()
	base := runtime.NumGoroutine()
	res, err := scc.Detect(g, scc.Options{
		Algorithm:    scc.Method2,
		Workers:      4,
		Seed:         5,
		Kernels:      scc.KernelsMultiPivot,
		StallTimeout: 200 * time.Millisecond,
		Chaos:        &scc.ChaosConfig{StallAt: map[string]int64{"reach": 2}},
	})
	if res != nil {
		t.Fatalf("stalled run returned a result: %+v", res)
	}
	if !errors.Is(err, scc.ErrStalled) {
		t.Fatalf("errors.Is(err, ErrStalled) = false; err = %v", err)
	}
	waitGoroutines(t, base)

	want, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := scc.Detect(g, scc.Options{
		Algorithm: scc.Method2, Workers: 4, Seed: 5, Kernels: scc.KernelsMultiPivot,
	})
	if err != nil {
		t.Fatalf("clean run after stall: %v", err)
	}
	if !scc.SamePartition(clean.Comp, want.Comp) {
		t.Fatal("clean run after stall diverges from Tarjan")
	}
}

// TestChaosStallTriggersWatchdog wedges the first BFS level forever
// (StallFor = 0) and checks that the watchdog fires: the observer sees
// EventStalled, the run aborts with ErrStalled within a few windows,
// and nothing leaks.
func TestChaosStallTriggersWatchdog(t *testing.T) {
	g := chaosGraph()
	base := runtime.NumGoroutine()

	var mu sync.Mutex
	var stalledEvents int
	obs := scc.ObserverFunc(func(ev scc.Event) {
		if ev.Type == scc.EventStalled {
			mu.Lock()
			stalledEvents++
			mu.Unlock()
		}
	})

	start := time.Now()
	res, err := scc.Detect(g, scc.Options{
		Algorithm:    scc.Method2,
		Workers:      4,
		Seed:         5,
		StallTimeout: 200 * time.Millisecond,
		Observer:     obs,
		Chaos:        &scc.ChaosConfig{StallAt: map[string]int64{"bfs": 1}},
	})
	elapsed := time.Since(start)

	if res != nil {
		t.Fatalf("stalled run returned a result: %+v", res)
	}
	if !errors.Is(err, scc.ErrStalled) {
		t.Fatalf("errors.Is(err, ErrStalled) = false; err = %v", err)
	}
	// Window 200ms, poll 50ms, grace 200ms: detection plus forced abort
	// stays well under ten windows even on a loaded machine.
	if elapsed > 5*time.Second {
		t.Fatalf("stall abort took %v", elapsed)
	}
	mu.Lock()
	ne := stalledEvents
	mu.Unlock()
	if ne != 1 {
		t.Fatalf("observed %d EventStalled, want 1", ne)
	}
	waitGoroutines(t, base)

	// A slow round (bounded stall) must NOT trip the watchdog: the
	// worker resumes before the window closes and the run completes.
	res, err = scc.Detect(g, scc.Options{
		Algorithm:    scc.Method2,
		Workers:      4,
		Seed:         5,
		StallTimeout: 2 * time.Second,
		Chaos: &scc.ChaosConfig{
			StallAt:  map[string]int64{"bfs": 1},
			StallFor: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("slow-but-progressing run aborted: %v", err)
	}
	want, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
	if err != nil {
		t.Fatal(err)
	}
	if !scc.SamePartition(res.Comp, want.Comp) {
		t.Fatal("slow run diverges from Tarjan")
	}
}

// TestStallTimeoutRespectsContextDeadline checks that a caller's
// cancellation reaches a worker wedged inside a barrier: kernels only
// poll ctx at round boundaries, so without the watchdog's grace-abort
// the wedge would outlive the context forever.
func TestStallTimeoutRespectsContextDeadline(t *testing.T) {
	g := chaosGraph()
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()

	res, err := scc.DetectContext(ctx, g, scc.Options{
		Algorithm:    scc.Method2,
		Workers:      4,
		Seed:         5,
		StallTimeout: 10 * time.Second, // watchdog armed, but the deadline is much sooner
		Chaos:        &scc.ChaosConfig{StallAt: map[string]int64{"bfs": 1}},
	})
	if res != nil {
		t.Fatalf("deadline-exceeded run returned a result: %+v", res)
	}
	if !errors.Is(err, scc.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
	waitGoroutines(t, base)
}

// TestMemoryBudgetDegrades pins a limit between the one-worker and
// four-worker estimates: the run must degrade (note the steps in
// Metrics.DegradedMode) and still produce the Tarjan partition.
func TestMemoryBudgetDegrades(t *testing.T) {
	g := chaosGraph()
	n := g.NumNodes()
	opts := scc.Options{Algorithm: scc.Method2, Workers: 4, Seed: 5}

	full := scc.EstimateMemory(n, opts)
	floorOpts := opts
	floorOpts.Workers = 1
	floor := scc.EstimateMemory(n, floorOpts)
	if floor >= full {
		t.Fatalf("estimate not monotone in workers: floor %d >= full %d", floor, full)
	}

	opts.MemoryLimit = floor // forces the ladder down to one worker
	res, err := scc.Detect(g, opts)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if res.Metrics.DegradedMode == "" {
		t.Fatal("run under tight budget reports no degradation")
	}
	if !strings.Contains(res.Metrics.DegradedMode, "workers=1") {
		t.Fatalf("DegradedMode = %q, want a workers=1 step", res.Metrics.DegradedMode)
	}
	want, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
	if err != nil {
		t.Fatal(err)
	}
	if !scc.SamePartition(res.Comp, want.Comp) {
		t.Fatal("degraded run diverges from Tarjan")
	}

	// A comfortable limit must not degrade anything.
	opts.MemoryLimit = 2 * full
	res, err = scc.Detect(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DegradedMode != "" {
		t.Fatalf("comfortable budget degraded the run: %q", res.Metrics.DegradedMode)
	}
}

// TestMemoryBudgetTooSmall checks that an unsatisfiable limit is
// rejected up front with the typed sentinel — no work, no partial
// state, engine still reusable.
func TestMemoryBudgetTooSmall(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 2))
	res, err := scc.Detect(g, scc.Options{Algorithm: scc.Method2, MemoryLimit: 1})
	if res != nil {
		t.Fatalf("over-budget run returned a result: %+v", res)
	}
	if !errors.Is(err, scc.ErrMemoryBudget) {
		t.Fatalf("errors.Is(err, ErrMemoryBudget) = false; err = %v", err)
	}
	if _, err := scc.Detect(g, scc.Options{Algorithm: scc.Method2}); err != nil {
		t.Fatalf("engine unusable after budget rejection: %v", err)
	}
}

// TestEstimateMemoryNonEngine: sequential and extension algorithms do
// not run on the parallel engine, so there is nothing to budget.
func TestEstimateMemoryNonEngine(t *testing.T) {
	for _, alg := range []scc.Algorithm{scc.Tarjan, scc.OBF} {
		if est := scc.EstimateMemory(1<<16, scc.Options{Algorithm: alg}); est != 0 {
			t.Fatalf("%v estimate = %d, want 0", alg, est)
		}
	}
	if est := scc.EstimateMemory(1<<16, scc.Options{Algorithm: scc.Method2}); est <= 0 {
		t.Fatalf("engine estimate = %d, want > 0", est)
	}
}

// TestRobustnessOptionValidation covers the new options' error
// taxonomy.
func TestRobustnessOptionValidation(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 4, 1))
	cases := []struct {
		field string
		opts  scc.Options
	}{
		{"StallTimeout", scc.Options{StallTimeout: -time.Second}},
		{"MemoryLimit", scc.Options{MemoryLimit: -1}},
		{"Chaos.PanicAt", scc.Options{Chaos: &scc.ChaosConfig{PanicAt: map[string]int64{"nosuch": 1}}}},
		{"Chaos.PanicAt", scc.Options{Chaos: &scc.ChaosConfig{PanicAt: map[string]int64{"trim": 0}}}},
		{"Chaos.StallAt", scc.Options{Chaos: &scc.ChaosConfig{StallAt: map[string]int64{"bogus": 2}}}},
		{"Chaos.StallFor", scc.Options{Chaos: &scc.ChaosConfig{StallFor: -time.Second}}},
	}
	for _, tc := range cases {
		_, err := scc.Detect(g, tc.opts)
		if !errors.Is(err, scc.ErrInvalidOption) {
			t.Fatalf("%s: errors.Is(ErrInvalidOption) = false; err = %v", tc.field, err)
		}
		var oe *scc.OptionError
		if !errors.As(err, &oe) || oe.Field != tc.field {
			t.Fatalf("%s: got %v", tc.field, err)
		}
	}
}

// TestParseChaosSpec covers the public flag-spec parser.
func TestParseChaosSpec(t *testing.T) {
	m, err := scc.ParseChaosSpec("bfs:2,task")
	if err != nil || m["bfs"] != 2 || m["task"] != 1 || len(m) != 2 {
		t.Fatalf("ParseChaosSpec = %v, %v", m, err)
	}
	if m, err := scc.ParseChaosSpec(""); err != nil || m != nil {
		t.Fatalf("empty spec: %v, %v", m, err)
	}
	if _, err := scc.ParseChaosSpec("trim:0"); err == nil {
		t.Fatal("bad ordinal accepted")
	}
	sites := scc.ChaosSites()
	if len(sites) != 12 {
		t.Fatalf("ChaosSites = %v", sites)
	}
	for _, s := range sites {
		if _, err := scc.ParseChaosSpec(s); err != nil {
			t.Fatalf("site %q does not round-trip: %v", s, err)
		}
	}
}
