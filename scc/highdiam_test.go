package scc_test

import (
	"encoding/binary"
	"testing"

	"repro/graph"
	"repro/scc"
)

// High-diameter shape builders shared by the differential matrix, the
// metamorphic suite and the fuzz seed corpus. These are the topologies
// the multi-pivot reachability kernel exists for: traversal depth is
// O(n), so a level-synchronous sweep pays one barrier per hop while
// the vertical local searches collapse whole runs per wave.

// chainGraph is the pure directed path 0→1→…→n-1: n singleton SCCs
// and diameter n-1.
func chainGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

// cycleOfChains joins k chains of m nodes head-to-tail into a single
// directed ring: one SCC of k*m nodes whose FW and BW sweeps must
// each cover the full circumference.
func cycleOfChains(k, m int) *graph.Graph {
	n := k * m
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

// lollipop is a directed cycle of cyc nodes (the candy, one SCC) with
// a stick-node path hanging off it: trim must peel the stick one
// level at a time before the cycle is exposed, and the candy's FW
// sweep runs the whole stick.
func lollipop(cyc, stick int) *graph.Graph {
	b := graph.NewBuilder(cyc + stick)
	for i := 0; i < cyc; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%cyc))
	}
	b.AddEdge(0, graph.NodeID(cyc))
	for i := 0; i < stick-1; i++ {
		b.AddEdge(graph.NodeID(cyc+i), graph.NodeID(cyc+i+1))
	}
	return b.Build()
}

// necklace chains k cycles of m nodes head-to-tail (cycle i's node 0
// feeds cycle i+1's node 0): k SCCs of m nodes each, none of them
// trimmable, connected into one weak component. Phase 1 stops at the
// first cycle (any m-cycle clears the default giant threshold), so
// the remaining k-1 cycles always reach the phase-2 kernel.
func necklace(k, m int) *graph.Graph {
	b := graph.NewBuilder(k * m)
	for c := 0; c < k; c++ {
		base := c * m
		for i := 0; i < m; i++ {
			b.AddEdge(graph.NodeID(base+i), graph.NodeID(base+(i+1)%m))
		}
		if c+1 < k {
			b.AddEdge(graph.NodeID(base), graph.NodeID(base+m))
		}
	}
	return b.Build()
}

// encodeGraph serializes g in FuzzDetect's binary format — two bytes
// of node count followed by 4-byte (from, to) groups — so the seed
// corpus can carry real shapes. Node counts are capped at the format's
// 1024 ceiling by construction (callers pass small shapes).
func encodeGraph(g *graph.Graph) []byte {
	n := g.NumNodes()
	buf := make([]byte, 2, 2+4*int(g.NumEdges()))
	binary.LittleEndian.PutUint16(buf, uint16(n-1)) // decoder does %1024+1
	for v := 0; v < n; v++ {
		for _, w := range g.Out(graph.NodeID(v)) {
			var e [4]byte
			binary.LittleEndian.PutUint16(e[:2], uint16(v))
			binary.LittleEndian.PutUint16(e[2:], uint16(w))
			buf = append(buf, e[:]...)
		}
	}
	return buf
}

// TestPivotOrderIndependence checks that the multi-pivot kernel's
// answer does not depend on which pivots the seeded RNG happens to
// draw, or on the claim races between concurrent searches: across
// seeds and worker counts the partition must stay canonically equal
// to Tarjan's. Pivot choice may legally change *which* representative
// labels an SCC, so the comparison is canonical, not byte-wise.
func TestPivotOrderIndependence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"deep-chain":      chainGraph(1500),
		"cycle-of-chains": cycleOfChains(6, 200),
		"lollipop":        lollipop(150, 500),
		"two-cycle-chain": chainOfTwoCycles(300),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			ref, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
			if err != nil {
				t.Fatal(err)
			}
			want := canonical(t, ref.Comp)
			for _, seed := range []int64{1, 7, 42, 1 << 40} {
				for _, workers := range []int{1, 3} {
					res, err := scc.Detect(g, scc.Options{
						Algorithm: scc.Method2, Workers: workers, Seed: seed,
						Kernels: scc.KernelsMultiPivot, Validate: true,
					})
					if err != nil {
						t.Fatalf("seed=%d/w=%d: %v", seed, workers, err)
					}
					if !sameCanonical(want, canonical(t, res.Comp)) {
						t.Fatalf("seed=%d/w=%d: partition depends on pivot order", seed, workers)
					}
				}
			}
		})
	}
}

// TestMultiPivotReachMetrics pins the new Result.Metrics counters to
// the kernel actually running. A pure chain would be consumed whole by
// the counter-peeling trim, so the workload is a necklace of untrimmable
// cycles: phase 1 clears the first cycle and the remaining ones must
// flow through the phase-2 multi-pivot sweep, producing pivot batches,
// waves, claims and — because every cycle is internally a chain —
// vertical local-search collapses.
func TestMultiPivotReachMetrics(t *testing.T) {
	g := necklace(20, 60)
	res, err := scc.Detect(g, scc.Options{
		Algorithm: scc.Method2, Workers: 1, Seed: 3,
		Kernels: scc.KernelsMultiPivot, Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSCCs != 20 {
		t.Fatalf("NumSCCs = %d, want 20", res.NumSCCs)
	}
	m := res.Metrics
	if m.PivotBatches == 0 {
		t.Error("PivotBatches = 0 under KernelsMultiPivot")
	}
	if m.ReachWaves == 0 {
		t.Error("ReachWaves = 0 under KernelsMultiPivot")
	}
	if m.ReachClaims == 0 {
		t.Error("ReachClaims = 0 under KernelsMultiPivot")
	}
	if m.LocalCollapses == 0 {
		t.Error("LocalCollapses = 0 on chain-shaped cycles")
	}
	// 20 cycles of 60 nodes are ~2400 one-hop BFS levels end to end;
	// vertical local searches (budget 64) must claim each cycle in a
	// handful of waves, far below one barrier per level.
	if m.ReachWaves > 400 {
		t.Errorf("ReachWaves = %d; local searches failed to collapse the cycles", m.ReachWaves)
	}
	// The worklist kernel must leave the reach counters untouched.
	res2, err := scc.Detect(g, scc.Options{
		Algorithm: scc.Method2, Workers: 1, Seed: 3, Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.PivotBatches != 0 || res2.Metrics.ReachWaves != 0 || res2.Metrics.ReachClaims != 0 {
		t.Errorf("reach counters leaked into worklist run: %+v", res2.Metrics)
	}
}
