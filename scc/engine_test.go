package scc_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/scc"
)

// engineGraph is the small-world graph the engine lifecycle suite
// runs on: big enough to exercise every Method2 phase, small enough
// to keep 100-run alloc pins fast.
func engineGraph() *graph.Graph {
	return gen.RMAT(gen.DefaultRMAT(10, 8, 6))
}

// TestEngineMatchesOneShot runs a warm engine repeatedly, across
// graphs of different sizes, and checks every run against Tarjan —
// the differential proof that state reuse (arena, queue, color/comp,
// result storage) never leaks one run's answers into the next.
func TestEngineMatchesOneShot(t *testing.T) {
	graphs := []*graph.Graph{
		gen.RMAT(gen.DefaultRMAT(10, 8, 6)),
		gen.RMAT(gen.DefaultRMAT(8, 6, 7)),  // shrinks the working set
		gen.RMAT(gen.DefaultRMAT(11, 8, 8)), // grows past the high-water mark
		graph.FromEdges(1, nil),             // degenerate
		gen.RMAT(gen.DefaultRMAT(9, 8, 9)),  // shrinks again
	}
	for _, workers := range []int{1, 4} {
		e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: workers, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			for gi, g := range graphs {
				res, err := e.Detect(context.Background(), g)
				if err != nil {
					t.Fatalf("w%d round %d graph %d: %v", workers, round, gi, err)
				}
				want, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
				if err != nil {
					t.Fatal(err)
				}
				if res.NumSCCs != want.NumSCCs || !scc.SamePartition(res.Comp, want.Comp) {
					t.Fatalf("w%d round %d graph %d: engine partition diverges from Tarjan", workers, round, gi)
				}
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineBusy holds a run in flight (an observer blocked on a
// channel) and checks that concurrent Detect and DetectBatch fail
// fast with ErrEngineBusy instead of queueing or racing.
func TestEngineBusy(t *testing.T) {
	g := engineGraph()
	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	obs := scc.ObserverFunc(func(scc.Event) {
		once.Do(func() {
			close(entered)
			<-release
		})
	})
	done := make(chan error, 1)
	go func() {
		_, err := e.Detect(context.Background(), g, scc.WithObserver(obs))
		done <- err
	}()
	<-entered

	if _, err := e.Detect(context.Background(), g); !errors.Is(err, scc.ErrEngineBusy) {
		t.Fatalf("concurrent Detect: want ErrEngineBusy, got %v", err)
	}
	if _, err := e.DetectBatch(context.Background(), []*graph.Graph{g}); !errors.Is(err, scc.ErrEngineBusy) {
		t.Fatalf("concurrent DetectBatch: want ErrEngineBusy, got %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("blocked run failed: %v", err)
	}
	// The engine is free again once the in-flight run returns.
	if _, err := e.Detect(context.Background(), g); err != nil {
		t.Fatalf("Detect after release: %v", err)
	}
}

// TestEngineClosed pins the after-Close contract: every entry point
// fails with an error wrapping ErrEngineClosed, and Close itself is
// idempotent.
func TestEngineClosed(t *testing.T) {
	g := engineGraph()
	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Detect(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Detect(context.Background(), g); !errors.Is(err, scc.ErrEngineClosed) {
		t.Fatalf("Detect after Close: want ErrEngineClosed, got %v", err)
	}
	if _, err := e.DetectBatch(context.Background(), []*graph.Graph{g}); !errors.Is(err, scc.ErrEngineClosed) {
		t.Fatalf("DetectBatch after Close: want ErrEngineClosed, got %v", err)
	}
	var se *scc.Error
	_, err = e.Detect(context.Background(), g)
	if !errors.As(err, &se) || se.Op != "detect" {
		t.Fatalf("closed-engine error envelope: got %v", err)
	}
}

// TestEngineCloseLeaksNothing creates engines, runs them, closes
// them, and checks the goroutine count settles back to the baseline —
// the gang and every queue goroutine must join on Close.
func TestEngineCloseLeaksNothing(t *testing.T) {
	g := engineGraph()
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Detect(context.Background(), g); err != nil {
			t.Fatal(err)
		}
		if _, err := e.DetectBatch(context.Background(), []*graph.Graph{g, g}); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutines(t, base)
}

// TestEngineSteadyStateAllocs is the tentpole pin: a warm
// single-worker engine performs zero allocations per Detect across
// 100 repeated runs. Everything the hot path touches — arena buffers,
// the phase-2 queue, color/comp arrays, the Result and its Comp —
// must come from engine-retained storage.
func TestEngineSteadyStateAllocs(t *testing.T) {
	g := engineGraph()
	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	run := func() {
		if _, err := e.Detect(ctx, g); err != nil {
			t.Fatal(err)
		}
	}
	run() // grow the arena and queue to the graph's high-water mark
	run()
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("Engine.Detect allocates %.2f objects/run in steady state, want 0", avg)
	}
}

// TestEngineRunOptionPrecedence checks the override layer: a RunOption
// replaces the engine-level Options default for exactly one run, and
// WithObserver(nil) silences an engine-level observer.
func TestEngineRunOptionPrecedence(t *testing.T) {
	g := engineGraph()
	var defEvents, runEvents int
	defObs := scc.ObserverFunc(func(scc.Event) { defEvents++ })
	runObs := scc.ObserverFunc(func(scc.Event) { runEvents++ })

	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 1, Observer: defObs})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()

	if _, err := e.Detect(ctx, g); err != nil {
		t.Fatal(err)
	}
	if defEvents == 0 {
		t.Fatal("engine-level observer saw no events")
	}

	defBefore := defEvents
	if _, err := e.Detect(ctx, g, scc.WithObserver(runObs)); err != nil {
		t.Fatal(err)
	}
	if runEvents == 0 {
		t.Fatal("per-run observer saw no events")
	}
	if defEvents != defBefore {
		t.Fatal("engine-level observer saw events on an overridden run")
	}

	if _, err := e.Detect(ctx, g, scc.WithObserver(nil)); err != nil {
		t.Fatal(err)
	}
	if defEvents != defBefore {
		t.Fatal("WithObserver(nil) did not silence the engine-level observer")
	}

	// The default is restored once the overriding run ends.
	if _, err := e.Detect(ctx, g); err != nil {
		t.Fatal(err)
	}
	if defEvents == defBefore {
		t.Fatal("engine-level observer did not resume after the override")
	}
}

// TestEngineRunOptionValidation checks that per-run values flow
// through the same validation as construction options.
func TestEngineRunOptionValidation(t *testing.T) {
	g := engineGraph()
	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	_, err = e.Detect(context.Background(), g, scc.WithMemoryLimit(-1))
	var oe *scc.OptionError
	if !errors.As(err, &oe) || oe.Field != "WithMemoryLimit" {
		t.Fatalf("WithMemoryLimit(-1): want *OptionError{Field: WithMemoryLimit}, got %v", err)
	}
	_, err = e.Detect(context.Background(), g,
		scc.WithChaos(&scc.ChaosConfig{PanicAt: map[string]int64{"no-such-site": 1}}))
	if !errors.As(err, &oe) || !errors.Is(err, scc.ErrInvalidOption) {
		t.Fatalf("WithChaos(bad site): want *OptionError, got %v", err)
	}
	// The engine still works after rejected runs.
	if _, err := e.Detect(context.Background(), g); err != nil {
		t.Fatal(err)
	}
}

// TestEngineShrinkOnBudget is the satellite bugfix pin at the public
// layer: after an unbudgeted run on a large graph grows the engine's
// high-water pool, a small-graph run under WithMemoryLimit sized for
// the small graph must succeed undegraded — the retained large
// footprint is shed rather than counted against (or hidden from) the
// budget.
func TestEngineShrinkOnBudget(t *testing.T) {
	big := gen.RMAT(gen.DefaultRMAT(13, 8, 3))
	small := gen.RMAT(gen.DefaultRMAT(8, 6, 4))
	opts := scc.Options{Algorithm: scc.Method2, Workers: 2, Seed: 1}
	limit := scc.EstimateMemory(small.NumNodes(), opts)
	if bigEst := scc.EstimateMemory(big.NumNodes(), opts); bigEst <= limit {
		t.Fatalf("test graphs too close: big estimate %d, small limit %d", bigEst, limit)
	}

	e, err := scc.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Detect(ctx, big); err != nil {
		t.Fatal(err)
	}
	res, err := e.Detect(ctx, small, scc.WithMemoryLimit(limit))
	if err != nil {
		t.Fatalf("budgeted small run after large run: %v", err)
	}
	if res.Metrics.DegradedMode != "" {
		t.Fatalf("small run degraded (%q) despite a limit sized for it", res.Metrics.DegradedMode)
	}
	want, err := scc.Detect(small, scc.Options{Algorithm: scc.Tarjan})
	if err != nil {
		t.Fatal(err)
	}
	if !scc.SamePartition(res.Comp, want.Comp) {
		t.Fatal("budgeted run diverges from Tarjan")
	}
}

// TestEngineChaosPerRun proves injectors are rebuilt per run: the same
// WithChaos ordinal fires on every run it is passed to, and clean runs
// in between see no injection — hit counters never drift across a
// request stream.
func TestEngineChaosPerRun(t *testing.T) {
	g := chaosGraph() // guarantees survivors into the recursive phase
	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	boom := scc.WithChaos(&scc.ChaosConfig{PanicAt: map[string]int64{"task": 1}})

	for round := 0; round < 2; round++ {
		var pe *scc.PanicError
		if _, err := e.Detect(ctx, g, boom); !errors.As(err, &pe) {
			t.Fatalf("round %d: want *PanicError, got %v", round, err)
		}
		res, err := e.Detect(ctx, g)
		if err != nil {
			t.Fatalf("round %d: clean run after panic: %v", round, err)
		}
		want, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
		if err != nil {
			t.Fatal(err)
		}
		if !scc.SamePartition(res.Comp, want.Comp) {
			t.Fatalf("round %d: clean run after panic diverges from Tarjan", round)
		}
	}
}

// TestEngineDetectBatch checks batch semantics: per-graph results
// match per-graph detection, a nil entry fails only its own slot, and
// a pre-canceled context fails the whole batch typed.
func TestEngineDetectBatch(t *testing.T) {
	graphs := []*graph.Graph{
		gen.RMAT(gen.DefaultRMAT(8, 6, 1)),
		nil,
		gen.RMAT(gen.DefaultRMAT(9, 6, 2)),
		graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 0}}),
	}
	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	out, err := e.DetectBatch(context.Background(), graphs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(graphs) {
		t.Fatalf("got %d results for %d graphs", len(out), len(graphs))
	}
	for i, g := range graphs {
		if g == nil {
			if !errors.Is(out[i].Err, scc.ErrNilGraph) {
				t.Fatalf("entry %d: want ErrNilGraph, got %v", i, out[i].Err)
			}
			continue
		}
		if out[i].Err != nil {
			t.Fatalf("entry %d: %v", i, out[i].Err)
		}
		want, err := scc.Detect(g, scc.Options{Algorithm: scc.Tarjan})
		if err != nil {
			t.Fatal(err)
		}
		if out[i].NumSCCs != want.NumSCCs || !scc.SamePartition(out[i].Comp, want.Comp) {
			t.Fatalf("entry %d: batch partition diverges from Tarjan", i)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.DetectBatch(ctx, graphs); !errors.Is(err, scc.ErrCanceled) {
		t.Fatalf("canceled batch: want ErrCanceled, got %v", err)
	}
}

// TestEngineSequentialAlgorithms checks that an engine built for a
// sequential algorithm detects with it and still serves DetectBatch
// (pinning its gang lazily on first use).
func TestEngineSequentialAlgorithms(t *testing.T) {
	g := engineGraph()
	for _, alg := range []scc.Algorithm{scc.Tarjan, scc.Kosaraju, scc.Gabow} {
		e, err := scc.New(scc.Options{Algorithm: alg, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Detect(context.Background(), g)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Algorithm != alg {
			t.Fatalf("result algorithm %v, want %v", res.Algorithm, alg)
		}
		out, err := e.DetectBatch(context.Background(), []*graph.Graph{g})
		if err != nil {
			t.Fatalf("%v batch: %v", alg, err)
		}
		if !scc.SamePartition(out[0].Comp, res.Comp) {
			t.Fatalf("%v: batch diverges from Detect", alg)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineConstructionErrors checks the single-validation-site
// contract: New rejects what DetectContext rejects, with the same
// *OptionError type, before pinning any resource.
func TestEngineConstructionErrors(t *testing.T) {
	cases := []scc.Options{
		{Algorithm: scc.Method2, K: -1},
		{Algorithm: scc.Algorithm(99)},
		{Algorithm: scc.Method2, GiantThreshold: 2},
		{Algorithm: scc.Method2, MemoryLimit: -5},
	}
	base := runtime.NumGoroutine()
	for i, opts := range cases {
		e, err := scc.New(opts)
		if e != nil || err == nil {
			t.Fatalf("case %d: New accepted invalid options", i)
		}
		var oe *scc.OptionError
		if !errors.As(err, &oe) || !errors.Is(err, scc.ErrInvalidOption) {
			t.Fatalf("case %d: want *OptionError, got %v", i, err)
		}
		if _, oneShotErr := scc.Detect(engineGraph(), opts); oneShotErr == nil {
			t.Fatalf("case %d: one-shot accepted what New rejected", i)
		}
	}
	waitGoroutines(t, base)

	e, err := scc.New(scc.Options{Algorithm: scc.Method2})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
}

// BenchmarkEngineDetect measures the warm-engine steady state the
// alloc pin guards; run with -benchmem to see the 0 B/op, 0 allocs/op
// profile.
func BenchmarkEngineDetect(b *testing.B) {
	g := engineGraph()
	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Detect(ctx, g); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Detect(ctx, g); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEngineNilGraph checks the nil-graph error from the engine path.
func TestEngineNilGraph(t *testing.T) {
	e, err := scc.New(scc.Options{Algorithm: scc.Method2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Detect(context.Background(), nil); !errors.Is(err, scc.ErrNilGraph) {
		t.Fatalf("want ErrNilGraph, got %v", err)
	}
}
