package scc_test

import (
	"math/rand"
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/scc"
)

// relabel builds the image of g under the node permutation perm
// (perm[v] is v's new id).
func relabel(g *graph.Graph, perm []graph.NodeID) *graph.Graph {
	n := g.NumNodes()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, w := range g.Out(graph.NodeID(v)) {
			b.AddEdge(perm[v], perm[w])
		}
	}
	return b.Build()
}

// metamorphicGraphs is a smaller matrix than the differential one:
// each graph is decomposed several times per relation. The
// high-diameter shapes (necklace, lollipop) are in so the multi-pivot
// kernel's vertical local searches face every relation too.
func metamorphicGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"smallworld": gen.SmallWorldSCC(1500, 200, 2.3, 32, 1.0, 23).Graph,
		"rmat":       gen.RMAT(gen.DefaultRMAT(10, 8, 29)),
		"planted": gen.PlantedSCCs(gen.PlantedConfig{
			Sizes:      gen.PowerLawSizes(120, 2.1, 40, 500, 31),
			IntraExtra: 1.0,
			InterEdges: 700,
			Shuffle:    true,
			Seed:       31,
		}).Graph,
		"necklace": necklace(12, 50),
		"lollipop": lollipop(100, 400),
	}
}

// metamorphicKernels is the kernel dimension every relation runs
// under: the default worklist kernels and the multi-pivot reachability
// kernel (legacy is covered by the differential matrix).
var metamorphicKernels = []scc.Kernels{scc.KernelsWorklist, scc.KernelsMultiPivot}

// TestMetamorphicRelabel checks the metamorphic relation under vertex
// relabeling: for any permutation π, the SCC partition of π(g) is the
// π-image of the partition of g. Both decompositions run Method2 with
// multiple workers, so the scratch arena, pooled task lists and
// adaptive BFS all sit on the tested path.
func TestMetamorphicRelabel(t *testing.T) {
	for name, g := range metamorphicGraphs() {
		t.Run(name, func(t *testing.T) {
			n := g.NumNodes()
			for _, kern := range metamorphicKernels {
				base, err := scc.Detect(g, scc.Options{Algorithm: scc.Method2, Workers: 4, Seed: 3, Kernels: kern, Validate: true})
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(99))
				for trial := 0; trial < 3; trial++ {
					perm := make([]graph.NodeID, n)
					for i := range perm {
						perm[i] = graph.NodeID(i)
					}
					rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
					pg := relabel(g, perm)
					pres, err := scc.Detect(pg, scc.Options{Algorithm: scc.Method2, Workers: 4, Seed: int64(trial), Kernels: kern, Validate: true})
					if err != nil {
						t.Fatal(err)
					}
					if pres.NumSCCs != base.NumSCCs {
						t.Fatalf("%v trial %d: NumSCCs %d, want %d", kern, trial, pres.NumSCCs, base.NumSCCs)
					}
					// Pull the permuted labeling back through π and compare
					// partitions (labels are representatives, so only the
					// induced partition is comparable).
					pulled := make([]int32, n)
					for v := 0; v < n; v++ {
						pulled[v] = pres.Comp[perm[v]]
					}
					if !scc.SamePartition(base.Comp, pulled) {
						t.Fatalf("%v trial %d: partition not invariant under relabeling", kern, trial)
					}
				}
			}
		})
	}
}

// TestMetamorphicReverse checks the transpose relation: g and its
// edge-reversal have identical SCC partitions (u and v are mutually
// reachable in g iff they are in gᵀ).
func TestMetamorphicReverse(t *testing.T) {
	for name, g := range metamorphicGraphs() {
		t.Run(name, func(t *testing.T) {
			for _, kern := range metamorphicKernels {
				base, err := scc.Detect(g, scc.Options{Algorithm: scc.Method2, Workers: 4, Seed: 3, Kernels: kern, Validate: true})
				if err != nil {
					t.Fatal(err)
				}
				rres, err := scc.Detect(g.Reverse(), scc.Options{Algorithm: scc.Method2, Workers: 4, Seed: 7, Kernels: kern, Validate: true})
				if err != nil {
					t.Fatal(err)
				}
				if rres.NumSCCs != base.NumSCCs {
					t.Fatalf("%v: NumSCCs %d, want %d", kern, rres.NumSCCs, base.NumSCCs)
				}
				if !scc.SamePartition(base.Comp, rres.Comp) {
					t.Fatalf("%v: partition not invariant under edge reversal", kern)
				}
			}
		})
	}
}
