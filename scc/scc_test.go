package scc

import (
	"fmt"
	"sync"
	"testing"

	"repro/gen"
	"repro/graph"
)

var allAlgorithms = []Algorithm{Tarjan, Kosaraju, Gabow, Baseline, Method1, Method2, FWBW, OBF, Coloring, MultiStep}

func TestDetectAllAlgorithmsAgree(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 6))
	var ref []int32
	for _, alg := range allAlgorithms {
		res, err := Detect(g, Options{Algorithm: alg, Workers: 4, Seed: 1, Validate: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Algorithm != alg {
			t.Fatalf("result algorithm %v, want %v", res.Algorithm, alg)
		}
		if ref == nil {
			ref = res.Comp
			continue
		}
		if !SamePartition(ref, res.Comp) {
			t.Fatalf("%v disagrees with %v", alg, allAlgorithms[0])
		}
	}
}

func TestDetectNilGraph(t *testing.T) {
	if _, err := Detect(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestDetectUnknownAlgorithm(t *testing.T) {
	g := graph.FromEdges(1, nil)
	if _, err := Detect(g, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestDetectDefaultIsMethod2(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 0}})
	res, err := Detect(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != Method2 {
		t.Fatalf("default algorithm %v", res.Algorithm)
	}
	if res.NumSCCs != 2 {
		t.Fatalf("NumSCCs = %d", res.NumSCCs)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2}})
	res, err := Detect(g, Options{Algorithm: Tarjan})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, res.Comp); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	bad := append([]int32(nil), res.Comp...)
	bad[2] = bad[0]
	if err := Validate(g, bad); err == nil {
		t.Fatal("corrupted decomposition accepted")
	}
}

func TestRenumber(t *testing.T) {
	dense, k := Renumber([]int32{7, 7, 3, 9, 3})
	if k != 3 {
		t.Fatalf("k = %d", k)
	}
	want := []int32{0, 0, 1, 2, 1}
	for i := range want {
		if dense[i] != want[i] {
			t.Fatalf("dense = %v, want %v", dense, want)
		}
	}
}

func TestRenumberEmpty(t *testing.T) {
	dense, k := Renumber(nil)
	if len(dense) != 0 || k != 0 {
		t.Fatal("empty renumber misbehaved")
	}
}

func TestComponentSizesAndHistogram(t *testing.T) {
	comp := []int32{0, 0, 0, 5, 5, 9} // sizes 3, 2, 1
	sizes := ComponentSizes(comp)
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
	hist := SizeHistogram(comp)
	if hist[1] != 1 || hist[2] != 1 || hist[3] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestLogSizeHistogram(t *testing.T) {
	// sizes: 1,1,2,3,4,8 → buckets: [2,2(sizes 2,3),1(size 4..7),1(size 8)]
	comp := []int32{0, 1, 2, 2, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 5, 5, 5, 5}
	b := LogSizeHistogram(comp)
	want := []int64{2, 2, 1, 1}
	if len(b) != len(want) {
		t.Fatalf("buckets = %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	p := gen.SmallWorldSCC(500, 100, 2.5, 10, 1.0, 3)
	res, err := Detect(p.Graph, Options{Algorithm: Method2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.LargestSCC() != 500 {
		t.Fatalf("LargestSCC = %d", res.LargestSCC())
	}
	if res.TrivialSCCs() <= 0 {
		t.Fatal("no trivial SCCs found in power-law tail")
	}
	h := res.SizeHistogram()
	if h[500] != 1 {
		t.Fatalf("histogram missing giant: h[500]=%d", h[500])
	}
}

func TestTraceScheduleExposed(t *testing.T) {
	p := gen.SmallWorldSCC(500, 200, 2.0, 20, 1.0, 5)
	res, err := Detect(p.Graph, Options{Algorithm: Method2, Seed: 2, TraceSchedule: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskTrace) == 0 {
		t.Fatal("TaskTrace empty despite TraceSchedule")
	}
	for i, tr := range res.TaskTrace {
		if tr.Parent >= int32(i) {
			t.Fatalf("task %d has parent %d (not executed before it)", i, tr.Parent)
		}
	}
}

func TestCondensationIsDAGShaped(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 0}, // comp A
		{From: 2, To: 3}, {From: 3, To: 2}, // comp B
		{From: 1, To: 2}, {From: 0, To: 2}, // A→B (deduped)
		{From: 3, To: 4}}) // B→C
	res, err := Detect(g, Options{Algorithm: Tarjan})
	if err != nil {
		t.Fatal(err)
	}
	_, k, edges := Condensation(res.Comp, func(yield func(u, v int32)) {
		for v := 0; v < g.NumNodes(); v++ {
			for _, w := range g.Out(graph.NodeID(v)) {
				yield(int32(v), int32(w))
			}
		}
	})
	if k != 3 {
		t.Fatalf("condensation has %d nodes, want 3", k)
	}
	if len(edges) != 2 {
		t.Fatalf("condensation has %d edges, want 2 (deduped)", len(edges))
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, tc := range []struct {
		a    Algorithm
		want string
	}{{Tarjan, "Tarjan"}, {Kosaraju, "Kosaraju"}, {Baseline, "Baseline"},
		{Method1, "Method1"}, {Method2, "Method2"}, {Algorithm(42), "Algorithm(42)"}} {
		if tc.a.String() != tc.want {
			t.Fatalf("%d.String() = %q", tc.a, tc.a.String())
		}
	}
}

func TestFWBWPublicAPI(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 6, 6))
	res, err := Detect(g, Options{Algorithm: FWBW, Seed: 1, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != FWBW || res.Algorithm.String() != "FW-BW" {
		t.Fatalf("algorithm = %v", res.Algorithm)
	}
	ref, _ := Detect(g, Options{Algorithm: Tarjan})
	if !SamePartition(res.Comp, ref.Comp) {
		t.Fatal("FW-BW disagrees with Tarjan")
	}
}

func TestOBFPublicAPI(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 6, 12))
	res, err := Detect(g, Options{Algorithm: OBF, Seed: 1, Workers: 4, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != OBF || res.Algorithm.String() != "OBF" {
		t.Fatalf("algorithm = %v", res.Algorithm)
	}
	ref, _ := Detect(g, Options{Algorithm: Tarjan})
	if !SamePartition(res.Comp, ref.Comp) {
		t.Fatal("OBF disagrees with Tarjan")
	}
	if res.NumSCCs != ref.NumSCCs {
		t.Fatalf("NumSCCs %d != %d", res.NumSCCs, ref.NumSCCs)
	}
}

func TestDetectRejectsBadOptions(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	for _, opts := range []Options{
		{K: -1},
		{GiantThreshold: -0.5},
		{GiantThreshold: 1.5},
		{MaxPhase1Trials: -2},
		{TraceTasks: -1},
		{PivotSample: -3},
	} {
		if _, err := Detect(g, opts); err == nil {
			t.Fatalf("options %+v accepted", opts)
		}
	}
}

func TestDetectConcurrentOnSharedGraph(t *testing.T) {
	// Graphs are immutable; concurrent Detect calls on one graph must
	// not interfere (run under -race).
	g := gen.RMAT(gen.DefaultRMAT(10, 6, 3))
	ref, _ := Detect(g, Options{Algorithm: Tarjan})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Detect(g, Options{Algorithm: Method2, Seed: int64(i), Workers: 2})
			if err != nil {
				errs[i] = err
				return
			}
			if !SamePartition(res.Comp, ref.Comp) {
				errs[i] = fmt.Errorf("run %d diverged", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestColoringPublicAPI(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 6, 14))
	res, err := Detect(g, Options{Algorithm: Coloring, Workers: 4, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != Coloring || res.Algorithm.String() != "Coloring" {
		t.Fatalf("algorithm = %v", res.Algorithm)
	}
	ref, _ := Detect(g, Options{Algorithm: Tarjan})
	if !SamePartition(res.Comp, ref.Comp) {
		t.Fatal("Coloring disagrees with Tarjan")
	}
}

func TestMultiStepPublicAPI(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 16))
	res, err := Detect(g, Options{Algorithm: MultiStep, Workers: 4, Seed: 2, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != MultiStep || res.Algorithm.String() != "MultiStep" {
		t.Fatalf("algorithm = %v", res.Algorithm)
	}
	if res.GiantSCC == 0 {
		t.Fatal("MultiStep found no giant SCC")
	}
	ref, _ := Detect(g, Options{Algorithm: Tarjan})
	if !SamePartition(res.Comp, ref.Comp) {
		t.Fatal("MultiStep disagrees with Tarjan")
	}
}
