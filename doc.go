// Package repro is a Go reproduction of Hong, Rodia & Olukotun, "On
// Fast Parallel Detection of Strongly Connected Components (SCC) in
// Small-World Graphs" (SC '13).
//
// The root package holds only the repository-level benchmark harness
// (bench_test.go), with one benchmark per table and figure of the
// paper. The library lives in the subpackages:
//
//	graph       CSR directed graphs, I/O, statistics
//	gen         synthetic graph generators (R-MAT, lattices, DAGs, ...)
//	scc         SCC detection: Tarjan, Kosaraju, Baseline, Method1, Method2
//	dist        the §6 distributed (BSP message-passing) pipeline
//	schedsim    machine model + list-scheduling simulator for thread sweeps
//	experiments dataset suite and per-figure experiment runners
//
// The primary entry point is scc.DetectContext, which honors
// cancellation and deadlines and streams progress events:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	res, err := scc.DetectContext(ctx, g, scc.Options{})
//
// See README.md for a tour and DESIGN.md for the system inventory.
package repro
