package gen

import (
	"testing"

	"repro/graph"
)

func TestRMATDeterministic(t *testing.T) {
	cfg := DefaultRMAT(10, 8, 42)
	g1 := RMAT(cfg)
	g2 := RMAT(cfg)
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("RMAT not deterministic in sizes")
	}
	for v := 0; v < g1.NumNodes(); v++ {
		a, b := g1.Out(graph.NodeID(v)), g2.Out(graph.NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("node %d adjacency differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
}

func TestRMATSizes(t *testing.T) {
	g := RMAT(DefaultRMAT(12, 8, 1))
	if g.NumNodes() != 1<<12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Duplicates are removed, so edges ≤ n*edgeFactor but should be the
	// vast majority of requested edges at this density.
	want := int64(8 << 12)
	if g.NumEdges() < want/2 || g.NumEdges() > want {
		t.Fatalf("edges = %d, want in [%d, %d]", g.NumEdges(), want/2, want)
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	g := RMAT(DefaultRMAT(12, 8, 7))
	s := graph.ComputeStats(g, 0)
	// Scale-free: hub degree far above the mean, high Gini.
	if float64(s.MaxOutDegree) < 8*s.MeanDegree {
		t.Fatalf("max degree %d not hub-like vs mean %.1f", s.MaxOutDegree, s.MeanDegree)
	}
	if s.DegreeGini < 0.4 {
		t.Fatalf("degree Gini %.2f too uniform for R-MAT", s.DegreeGini)
	}
}

func TestRMATSmallWorldDiameter(t *testing.T) {
	g := RMAT(DefaultRMAT(12, 8, 3))
	d := graph.EstimateDiameter(g, 6, 1)
	if d > 15 {
		t.Fatalf("R-MAT pseudo-diameter %d, want small-world (≤15)", d)
	}
}

func TestRMATUndirectedReciprocity(t *testing.T) {
	// Random orientation: roughly half the edge slots in each direction,
	// few reciprocal pairs relative to a symmetric graph.
	g := RMATUndirected(DefaultRMAT(11, 8, 5))
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	s := graph.ComputeStats(g, 0)
	if s.ReciprocalFrac > 0.5 {
		t.Fatalf("reciprocal fraction %.2f too high for randomly oriented graph", s.ReciprocalFrac)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 9)
	if g.NumNodes() != 1000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() < 4800 || g.NumEdges() > 5000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	s := graph.ComputeStats(g, 0)
	if s.DegreeGini > 0.35 {
		t.Fatalf("ER degree Gini %.2f, want near-uniform", s.DegreeGini)
	}
}

func TestWattsStrogatzRing(t *testing.T) {
	// beta=0: pure ring lattice, diameter ≈ n/(2k) in the undirected view.
	g := WattsStrogatz(200, 2, 0, 1)
	if g.NumEdges() != 400 {
		t.Fatalf("edges = %d, want 400", g.NumEdges())
	}
	d := graph.EstimateDiameter(g, 10, 1)
	if d < 30 {
		t.Fatalf("ring diameter %d, want large", d)
	}
	// Small rewiring probability collapses the diameter.
	g2 := WattsStrogatz(200, 2, 0.1, 1)
	d2 := graph.EstimateDiameter(g2, 10, 1)
	if d2 >= d {
		t.Fatalf("rewired diameter %d not smaller than ring %d", d2, d)
	}
}

func TestRoadLatticeShape(t *testing.T) {
	g := RoadLattice(RoadLatticeConfig{Rows: 50, Cols: 50, TwoWayProb: 0.3, Seed: 2})
	if g.NumNodes() != 2500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	s := graph.ComputeStats(g, 8)
	if s.EstDiameter < 49 {
		t.Fatalf("lattice diameter %d, want ≥ 49 (non-small-world)", s.EstDiameter)
	}
	if s.MaxOutDegree > 8 {
		t.Fatalf("lattice max degree %d, want bounded", s.MaxOutDegree)
	}
	if s.DegreeGini > 0.35 {
		t.Fatalf("lattice Gini %.2f, want near-uniform", s.DegreeGini)
	}
}

func TestCitationDAGAcyclic(t *testing.T) {
	g := CitationDAG(2000, 5, 3)
	// Every edge must point from a higher id to a strictly lower id.
	for v := 0; v < g.NumNodes(); v++ {
		for _, tgt := range g.Out(graph.NodeID(v)) {
			if int(tgt) >= v {
				t.Fatalf("edge %d→%d violates citation order", v, tgt)
			}
		}
	}
}

func TestPlantedSCCsStructure(t *testing.T) {
	p := PlantedSCCs(PlantedConfig{
		Sizes:      []int{5, 1, 3, 1, 7},
		IntraExtra: 1,
		InterEdges: 10,
		Shuffle:    true,
		Seed:       4,
	})
	if p.NumComps != 5 {
		t.Fatalf("NumComps = %d", p.NumComps)
	}
	if p.Graph.NumNodes() != 17 {
		t.Fatalf("nodes = %d, want 17", p.Graph.NumNodes())
	}
	// Component sizes from Comp must match requested sizes.
	count := map[int]int{}
	for _, c := range p.Comp {
		count[c]++
	}
	want := []int{5, 1, 3, 1, 7}
	for ci, w := range want {
		if count[ci] != w {
			t.Fatalf("component %d size %d, want %d", ci, count[ci], w)
		}
	}
}

// TestPlantedNoCrossCycles verifies the planted decomposition is sound:
// within-component nodes are mutually reachable, and no directed cycle
// crosses components (checked via reachability on a small instance).
func TestPlantedNoCrossCycles(t *testing.T) {
	p := PlantedSCCs(PlantedConfig{
		Sizes:      []int{4, 3, 2, 1, 1, 5},
		IntraExtra: 0.5,
		InterEdges: 20,
		Shuffle:    true,
		Seed:       8,
	})
	g := p.Graph
	n := g.NumNodes()
	reach := make([][]bool, n)
	for v := 0; v < n; v++ {
		reach[v] = bfsReach(g, graph.NodeID(v))
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			mutual := reach[u][v] && reach[v][u]
			same := p.Comp[u] == p.Comp[v]
			if mutual != same {
				t.Fatalf("nodes %d,%d: mutual=%v sameComp=%v", u, v, mutual, same)
			}
		}
	}
}

func bfsReach(g *graph.Graph, src graph.NodeID) []bool {
	seen := make([]bool, g.NumNodes())
	seen[src] = true
	q := []graph.NodeID{src}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, t := range g.Out(v) {
			if !seen[t] {
				seen[t] = true
				q = append(q, t)
			}
		}
	}
	return seen
}

func TestPowerLawSizes(t *testing.T) {
	sizes := PowerLawSizes(10000, 2.5, 100, 5000, 1)
	if sizes[0] != 5000 {
		t.Fatalf("giant = %d", sizes[0])
	}
	ones, big := 0, 0
	for _, s := range sizes[1:] {
		if s < 1 || s > 100 {
			t.Fatalf("size %d out of range", s)
		}
		if s == 1 {
			ones++
		}
		if s >= 10 {
			big++
		}
	}
	// Power law with alpha 2.5: size-1 dominates, few big ones.
	if ones < 7000 {
		t.Fatalf("size-1 count %d, want dominant", ones)
	}
	if big > 500 {
		t.Fatalf("size≥10 count %d, want rare", big)
	}
}

func TestSmallWorldSCCGroundTruth(t *testing.T) {
	p := SmallWorldSCC(200, 50, 2.5, 20, 2.0, 7)
	// Giant component must exist with the requested size.
	count := map[int]int{}
	for _, c := range p.Comp {
		count[c]++
	}
	maxSz := 0
	for _, sz := range count {
		if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz != 200 {
		t.Fatalf("giant size %d, want 200", maxSz)
	}
}

func TestPlantedPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PlantedSCCs accepted size 0")
		}
	}()
	PlantedSCCs(PlantedConfig{Sizes: []int{3, 0}})
}
