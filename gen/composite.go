package gen

import (
	"math/rand"

	"repro/graph"
)

// TailConfig describes a power-law tail of small SCCs attached around
// a core graph, reproducing the SCC structure of small-world graphs
// (Figure 3(a) of the paper): a giant SCC in the center with many
// small SCCs hanging off it on the forward and backward sides.
type TailConfig struct {
	// Components is the number of small SCCs to attach.
	Components int
	// Alpha is the power-law exponent of component sizes (≈2-3 for
	// real graphs); MaxSize truncates the distribution.
	Alpha   float64
	MaxSize int
	// AttachEdges is the number of edges connecting each component to
	// the rest of the graph.
	AttachEdges int
	// ChainProb is the probability an attachment edge goes to another
	// tail component (forming weakly connected chains of small SCCs —
	// the structure Trim2 and Par-WCC exploit) instead of the core.
	ChainProb float64
	Seed      int64
}

// WithTail returns a graph consisting of the core plus an attached
// power-law tail of small SCCs. Tail components are placed on a fixed
// topological order with the core in the middle; every attachment edge
// follows that order, so no tail component ever merges with the giant
// SCC or with another component. Components before the core reach it
// (the BW side); components after it are reached from it (the FW
// side).
func WithTail(core *graph.Graph, cfg TailConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := PowerLawSizes(cfg.Components, cfg.Alpha, cfg.MaxSize, 0, cfg.Seed+1)
	coreN := core.NumNodes()
	total := coreN
	for _, s := range sizes {
		total += s
	}
	b := graph.NewBuilder(total)
	// Copy the core.
	for v := 0; v < coreN; v++ {
		for _, t := range core.Out(graph.NodeID(v)) {
			b.AddEdge(graph.NodeID(v), t)
		}
	}
	// Lay tail components out in order; the first half sit on the BW
	// side (before the core), the rest on the FW side. Each component
	// also gets a chain depth in {0,1,2}: chain edges only go from
	// depth d to depth d+1, bounding weak-connectivity chains to a few
	// components — small SCCs in real graphs hang at most a couple of
	// hops off the giant SCC, and unbounded chains would inflate the
	// BFS level count far beyond the small-world regime.
	half := len(sizes) / 2
	type comp struct {
		nodes []graph.NodeID
		fw    bool // true: core→comp side
		depth int
	}
	comps := make([]comp, len(sizes))
	next := graph.NodeID(coreN)
	for i, s := range sizes {
		nodes := make([]graph.NodeID, s)
		for j := range nodes {
			nodes[j] = next
			next++
		}
		// Make the component strongly connected with small diameter: a
		// Hamiltonian cycle plus ~s random chords (diameter O(log s)
		// with high probability — a bare cycle would cost s BFS levels
		// to traverse, destroying the small-world property).
		if s > 1 {
			for j := 0; j < s; j++ {
				b.AddEdge(nodes[j], nodes[(j+1)%s])
			}
			for j := 0; j < s-2; j++ {
				b.AddEdge(nodes[rng.Intn(s)], nodes[rng.Intn(s)])
			}
		}
		comps[i] = comp{nodes: nodes, fw: i >= half, depth: rng.Intn(3)}
	}
	randCore := func() graph.NodeID { return graph.NodeID(rng.Intn(coreN)) }
	pick := func(c comp) graph.NodeID { return c.nodes[rng.Intn(len(c.nodes))] }
	for i, c := range comps {
		for e := 0; e < cfg.AttachEdges; e++ {
			if rng.Float64() < cfg.ChainProb {
				// Chain edge to another tail component one depth level
				// down, following the global index order so components
				// never merge.
				j := rng.Intn(len(comps))
				if j == i || comps[j].depth == comps[i].depth {
					continue
				}
				src, dst := i, j
				if comps[src].depth > comps[dst].depth {
					src, dst = dst, src
				}
				if src > dst {
					continue // must also respect index order to stay acyclic
				}
				b.AddEdge(pick(comps[src]), pick(comps[dst]))
			} else if c.fw {
				b.AddEdge(randCore(), pick(c))
			} else {
				b.AddEdge(pick(c), randCore())
			}
		}
	}
	return b.Build()
}
