// Package gen generates synthetic graph instances that stand in for the
// real-world datasets of Table 1 in Hong, Rodia & Olukotun (SC '13).
//
// The SCC algorithms under study react only to structural properties —
// giant-SCC fraction, power-law SCC-size and degree distributions,
// abundance of trivial SCCs, diameter class — so each generator is
// parameterized to reproduce those properties at laptop scale:
//
//   - RMAT: recursive-matrix (Kronecker) graphs with the small-world and
//     scale-free properties of web/social graphs.
//   - ErdosRenyi: G(n, m) uniform random digraphs.
//   - WattsStrogatz: directed ring-rewiring small-world graphs.
//   - RoadLattice: 2-D grid with randomly oriented edges — the CA-road
//     analog (planar, high diameter, non-small-world).
//   - CitationDAG: strictly forward-citing acyclic graphs — the Patents
//     analog (every SCC is trivial).
//   - PlantedSCCs: graphs with a known SCC decomposition, for testing.
//
// All generators are deterministic given their Seed.
package gen

import (
	"math/rand"

	"repro/graph"
)

// RMATConfig parameterizes an R-MAT (recursive matrix) generator run.
// The four quadrant probabilities must sum to ~1. The classic
// "nice" parameters (a=0.57, b=0.19, c=0.19, d=0.05) produce graphs
// with power-law degree distributions and a giant SCC, like web and
// social graphs.
type RMATConfig struct {
	Scale      int     // number of nodes = 2^Scale
	EdgeFactor float64 // average directed edges per node
	A, B, C, D float64 // quadrant probabilities
	Seed       int64
	// Noise perturbs the quadrant probabilities per recursion level
	// (SSCA-style "smoothing") to avoid artificial degree spikes.
	Noise float64
}

// DefaultRMAT returns the canonical Graph500-style parameters at the
// given scale and edge factor.
func DefaultRMAT(scale int, edgeFactor float64, seed int64) RMATConfig {
	return RMATConfig{
		Scale: scale, EdgeFactor: edgeFactor,
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Seed: seed, Noise: 0.05,
	}
}

// RMAT generates a directed R-MAT graph.
func RMAT(cfg RMATConfig) *graph.Graph {
	n := 1 << uint(cfg.Scale)
	m := int(float64(n) * cfg.EdgeFactor)
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := rmatEdge(rng, cfg)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// rmatEdge samples one edge by descending the recursive 2×2 partition.
func rmatEdge(rng *rand.Rand, cfg RMATConfig) (graph.NodeID, graph.NodeID) {
	var u, v int
	a, bb, c := cfg.A, cfg.B, cfg.C
	for bit := cfg.Scale - 1; bit >= 0; bit-- {
		// Perturb per level so repeated quadrant choices do not align.
		na, nb, nc := a, bb, c
		if cfg.Noise > 0 {
			na += cfg.Noise * (rng.Float64() - 0.5) * a
			nb += cfg.Noise * (rng.Float64() - 0.5) * bb
			nc += cfg.Noise * (rng.Float64() - 0.5) * c
		}
		r := rng.Float64()
		switch {
		case r < na:
			// top-left: no bits set
		case r < na+nb:
			v |= 1 << uint(bit)
		case r < na+nb+nc:
			u |= 1 << uint(bit)
		default:
			u |= 1 << uint(bit)
			v |= 1 << uint(bit)
		}
	}
	return graph.NodeID(u), graph.NodeID(v)
}

// RMATUndirected generates an R-MAT graph where every sampled edge is
// kept as a single undirected edge, then orients each edge randomly
// with probability 1/2 per direction — the construction the paper uses
// for the Friendster, Orkut and CA-road datasets (Table 1, "*").
func RMATUndirected(cfg RMATConfig) *graph.Graph {
	n := 1 << uint(cfg.Scale)
	m := int(float64(n) * cfg.EdgeFactor)
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := rmatEdge(rng, cfg)
		if rng.Intn(2) == 0 {
			b.AddEdge(u, v)
		} else {
			b.AddEdge(v, u)
		}
	}
	return b.Build()
}

// ErdosRenyi generates a uniform G(n, m) directed graph: m edges with
// independently uniform endpoints.
func ErdosRenyi(n int, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// WattsStrogatz generates a directed small-world graph: a ring lattice
// where each node points to its k clockwise successors, with each edge
// rewired to a uniform random target with probability beta. beta=0 is a
// high-diameter ring; small beta collapses the diameter (the
// "small-world regime"); beta=1 approaches a random graph.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			t := (v + j) % n
			if rng.Float64() < beta {
				t = rng.Intn(n)
			}
			b.AddEdge(graph.NodeID(v), graph.NodeID(t))
		}
	}
	return b.Build()
}

// RoadLatticeConfig parameterizes the CA-road analog.
type RoadLatticeConfig struct {
	Rows, Cols int
	// TwoWayProb is the probability a lattice edge is kept
	// bidirectional; the rest are randomly oriented (50/50), matching
	// the paper's treatment of the undirected CA-road graph.
	TwoWayProb float64
	// Rewire randomly replaces this fraction of edges with uniform
	// random ones (0 keeps the graph strictly planar-like).
	Rewire float64
	Seed   int64
}

// RoadLattice generates a 2-D grid road network: nodes at (r, c) with
// edges to right and down neighbors, randomly oriented or kept two-way.
// The result has a large diameter (≈ Rows+Cols), near-uniform degrees,
// and many medium-sized SCCs — the non-small-world counterexample graph
// of §5.
func RoadLattice(cfg RoadLatticeConfig) *graph.Graph {
	n := cfg.Rows * cfg.Cols
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(n)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cfg.Cols + c) }
	addOriented := func(u, v graph.NodeID) {
		switch {
		case cfg.Rewire > 0 && rng.Float64() < cfg.Rewire:
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		case rng.Float64() < cfg.TwoWayProb:
			b.AddEdge(u, v)
			b.AddEdge(v, u)
		case rng.Intn(2) == 0:
			b.AddEdge(u, v)
		default:
			b.AddEdge(v, u)
		}
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				addOriented(id(r, c), id(r, c+1))
			}
			if r+1 < cfg.Rows {
				addOriented(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// CitationDAG generates an acyclic citation network (the Patents
// analog): node v cites `deg` earlier nodes, preferentially recent
// ones. Every SCC of the result has size 1, so the whole decomposition
// is solved by the Trim step, as the paper observes for Patents.
func CitationDAG(n int, deg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		d := deg
		if v < deg {
			d = v
		}
		for j := 0; j < d; j++ {
			// Preferential attachment to recent nodes: sample an offset
			// with a geometric-ish distribution.
			span := v
			off := int(float64(span) * rng.Float64() * rng.Float64())
			t := v - 1 - off
			if t < 0 {
				t = rng.Intn(v)
			}
			b.AddEdge(graph.NodeID(v), graph.NodeID(t))
		}
	}
	return b.Build()
}
