package gen_test

import (
	"fmt"

	"repro/gen"
)

// ExampleRMAT generates a scale-free small-world graph.
func ExampleRMAT() {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 42))
	fmt.Println("nodes:", g.NumNodes())
	fmt.Println("edges sampled:", g.NumEdges() > 6000)
	// Output:
	// nodes: 1024
	// edges sampled: true
}

// ExamplePlantedSCCs builds a graph with a known decomposition.
func ExamplePlantedSCCs() {
	p := gen.PlantedSCCs(gen.PlantedConfig{
		Sizes:      []int{3, 1, 2},
		InterEdges: 4,
		Seed:       7,
	})
	fmt.Println("nodes:", p.Graph.NumNodes(), "components:", p.NumComps)
	// Output: nodes: 6 components: 3
}

// ExampleWithTail attaches a power-law SCC tail around a core graph —
// the small-world SCC structure of the paper's Figure 3.
func ExampleWithTail() {
	core := gen.RMAT(gen.DefaultRMAT(9, 8, 1))
	g := gen.WithTail(core, gen.TailConfig{
		Components:  32,
		Alpha:       2.2,
		MaxSize:     16,
		AttachEdges: 2,
		Seed:        1,
	})
	fmt.Println(g.NumNodes() > core.NumNodes())
	// Output: true
}
