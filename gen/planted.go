package gen

import (
	"math"
	"math/rand"

	"repro/graph"
)

// PlantedConfig describes a graph with a known SCC decomposition.
type PlantedConfig struct {
	// Sizes lists the SCC sizes to plant, in any order. Each component
	// is made strongly connected by a Hamiltonian cycle over its nodes
	// plus IntraExtra×size random internal edges.
	Sizes []int
	// IntraExtra adds this many extra random edges per node inside each
	// non-trivial component (density knob).
	IntraExtra float64
	// InterEdges adds this many total cross-component edges, oriented
	// strictly from a lower-indexed component to a higher-indexed one
	// (after a random permutation), so components never merge.
	InterEdges int
	// Shuffle randomly permutes node IDs so component membership is not
	// recoverable from ID ranges.
	Shuffle bool
	Seed    int64
}

// Planted is a generated graph together with its ground-truth SCC
// decomposition.
type Planted struct {
	Graph *graph.Graph
	// Comp[v] is the planted component index of node v.
	Comp []int
	// NumComps is the number of planted components.
	NumComps int
}

// PlantedSCCs generates a graph whose SCC decomposition is known by
// construction: each requested component is strongly connected
// internally, and all cross-component edges follow a fixed topological
// order over components, so no larger SCC can form. Used as the
// ground-truth oracle workload in tests.
func PlantedSCCs(cfg PlantedConfig) *Planted {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 0
	for _, s := range cfg.Sizes {
		if s <= 0 {
			panic("gen: planted SCC size must be positive")
		}
		n += s
	}
	// Assign node ids: perm maps "slot" -> node id.
	perm := make([]graph.NodeID, n)
	for i := range perm {
		perm[i] = graph.NodeID(i)
	}
	if cfg.Shuffle {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}
	// Randomize the topological order of components.
	order := rng.Perm(len(cfg.Sizes))

	comp := make([]int, n)
	b := graph.NewBuilder(n)
	// members[k] lists node ids of component with topological position k.
	members := make([][]graph.NodeID, len(cfg.Sizes))
	slot := 0
	for ci, size := range cfg.Sizes {
		k := order[ci]
		nodes := make([]graph.NodeID, size)
		for i := 0; i < size; i++ {
			nodes[i] = perm[slot]
			comp[perm[slot]] = ci
			slot++
		}
		members[k] = nodes
		if size > 1 {
			for i := 0; i < size; i++ {
				b.AddEdge(nodes[i], nodes[(i+1)%size])
			}
			extra := int(cfg.IntraExtra * float64(size))
			for e := 0; e < extra; e++ {
				b.AddEdge(nodes[rng.Intn(size)], nodes[rng.Intn(size)])
			}
		}
	}
	// Cross edges respect topological order: from position i to j > i.
	for e := 0; e < cfg.InterEdges && len(cfg.Sizes) > 1; e++ {
		i := rng.Intn(len(cfg.Sizes) - 1)
		j := i + 1 + rng.Intn(len(cfg.Sizes)-i-1)
		src := members[i][rng.Intn(len(members[i]))]
		dst := members[j][rng.Intn(len(members[j]))]
		b.AddEdge(src, dst)
	}
	return &Planted{Graph: b.Build(), Comp: comp, NumComps: len(cfg.Sizes)}
}

// PowerLawSizes draws `count` component sizes from a discrete power law
// P(s) ∝ s^(-alpha) truncated at maxSize, and optionally prepends one
// giant component of size `giant`. This mirrors the SCC-size structure
// of small-world graphs (Figure 2 of the paper): one giant SCC, a
// power-law tail, and a sea of size-1 components.
func PowerLawSizes(count int, alpha float64, maxSize int, giant int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, 0, count+1)
	if giant > 0 {
		sizes = append(sizes, giant)
	}
	// Inverse-CDF sampling on the truncated zeta distribution.
	weights := make([]float64, maxSize+1)
	total := 0.0
	for s := 1; s <= maxSize; s++ {
		weights[s] = math.Pow(float64(s), -alpha)
		total += weights[s]
	}
	for i := 0; i < count; i++ {
		r := rng.Float64() * total
		acc := 0.0
		sz := 1
		for s := 1; s <= maxSize; s++ {
			acc += weights[s]
			if r <= acc {
				sz = s
				break
			}
		}
		sizes = append(sizes, sz)
	}
	return sizes
}

// SmallWorldSCC generates a graph with the canonical small-world SCC
// structure and known ground truth: one giant SCC of `giantSize` nodes,
// `tail` power-law-sized small SCCs, and cross edges attaching the
// small SCCs around the giant one (§3.3, Figure 3(a)).
func SmallWorldSCC(giantSize, tail int, alpha float64, maxSize int, interPerComp float64, seed int64) *Planted {
	sizes := PowerLawSizes(tail, alpha, maxSize, giantSize, seed)
	return PlantedSCCs(PlantedConfig{
		Sizes:      sizes,
		IntraExtra: 1.5,
		InterEdges: int(interPerComp * float64(len(sizes))),
		Shuffle:    true,
		Seed:       seed + 1,
	})
}
