// Package schedsim models the parallel execution of a recorded run on
// a machine with P hardware threads, so that the thread sweeps of the
// paper's Figure 6 can be reproduced on hosts with fewer cores than
// the authors' 2-socket, 16-core, 32-thread Xeon.
//
// Two execution shapes are modeled:
//
//   - Task-parallel phases (Recur-FWBW): the engine records the task
//     dependency DAG with measured sequential durations
//     (core.Result.TaskTrace); SimulateTasks replays it through greedy
//     list scheduling on P processors. This captures exactly the
//     starvation the paper analyzes — a serial chain of tasks cannot
//     speed up no matter how many processors are simulated, while the
//     ~10,000 independent WCC tasks of Method 2 scale until the machine
//     saturates.
//
//   - Data-parallel phases (Par-Trim, Par-FWBW, Par-WCC): measured at
//     one worker, modeled as T(P) = T1/E(P) + rounds·barrier(P), where
//     E(P) is the machine's effective parallelism and the second term
//     charges one barrier per BFS level / trim round / WCC round.
//
// The machine model encodes the efficiency knees the paper points out
// in §5: crossing the socket boundary (NUMA) and sharing physical
// cores (SMT) both yield less than one core's worth of throughput per
// added thread.
package schedsim

import (
	"container/heap"
	"math"
	"time"
)

// Tier is a group of hardware threads with a common relative speed.
type Tier struct {
	// Threads is the number of threads in this tier.
	Threads int
	// Speed is each thread's throughput relative to a tier-0 thread.
	Speed float64
}

// MachineModel describes the simulated machine.
type MachineModel struct {
	// Tiers lists thread groups in the order they are used as the
	// thread count grows.
	Tiers []Tier
	// BarrierCost is the cost of one barrier synchronization across
	// the participating threads (charged once per parallel round).
	BarrierCost time.Duration
}

// PaperMachine models the paper's evaluation host: two Intel Xeon
// E5-2660 sockets, 8 cores each, 2 hardware threads per core. The
// first 8 threads are full cores on one socket; threads 9-16 are cores
// on the second socket discounted for NUMA traffic; threads 17-32 are
// SMT siblings contributing a fraction of a core each.
func PaperMachine() MachineModel {
	return MachineModel{
		Tiers: []Tier{
			{Threads: 8, Speed: 1.0},
			{Threads: 8, Speed: 0.7},
			{Threads: 16, Speed: 0.35},
		},
		BarrierCost: time.Microsecond,
	}
}

// Speeds returns the per-thread relative speeds for a run with p
// threads, in assignment order. p beyond the machine's total threads
// is clamped.
func (m MachineModel) Speeds(p int) []float64 {
	speeds := make([]float64, 0, p)
	for _, tier := range m.Tiers {
		for i := 0; i < tier.Threads && len(speeds) < p; i++ {
			speeds = append(speeds, tier.Speed)
		}
	}
	if len(speeds) == 0 {
		speeds = append(speeds, 1.0)
	}
	return speeds
}

// EffectiveParallelism is the total throughput (in tier-0 cores) of a
// p-thread run: the sum of the assigned threads' speeds.
func (m MachineModel) EffectiveParallelism(p int) float64 {
	total := 0.0
	for _, s := range m.Speeds(p) {
		total += s
	}
	return total
}

// Task is one node of a recorded task DAG.
type Task struct {
	// Parent is the index of the task whose execution spawned this
	// one, or -1 for initially ready tasks.
	Parent int32
	// Duration is the task's measured sequential duration.
	Duration time.Duration
}

// readyItem is a ready task in the simulation queue.
type readyItem struct {
	at time.Duration // when the task became ready
	id int32
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// SimulateTasks replays the task DAG on p threads of the machine and
// returns the modeled makespan. Scheduling is greedy: tasks are
// dispatched in ready order to the processor that can finish them
// earliest (accounting for per-tier speeds). A task becomes ready the
// moment its parent completes, matching the engine's work queue, and
// each dispatch pays one BarrierCost-scaled dequeue overhead.
func SimulateTasks(tasks []Task, m MachineModel, p int) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	speeds := m.Speeds(p)
	free := make([]time.Duration, len(speeds))

	children := make([][]int32, len(tasks))
	var ready readyHeap
	for i, t := range tasks {
		if t.Parent < 0 {
			ready = append(ready, readyItem{0, int32(i)})
		} else {
			children[t.Parent] = append(children[t.Parent], int32(i))
		}
	}
	heap.Init(&ready)

	var makespan time.Duration
	for ready.Len() > 0 {
		item := heap.Pop(&ready).(readyItem)
		t := tasks[item.id]
		// Pick the processor minimizing the finish time.
		bestJ, bestFinish := 0, time.Duration(math.MaxInt64)
		for j := range free {
			start := max(item.at, free[j])
			finish := start + time.Duration(float64(t.Duration)/speeds[j])
			if finish < bestFinish {
				bestJ, bestFinish = j, finish
			}
		}
		free[bestJ] = bestFinish
		if bestFinish > makespan {
			makespan = bestFinish
		}
		for _, c := range children[item.id] {
			heap.Push(&ready, readyItem{bestFinish, c})
		}
	}
	return makespan
}

// ModelDataParallel models a barrier-synchronized data-parallel phase
// that took t1 at one worker with the given number of parallel rounds:
// the work shrinks by the machine's effective parallelism, and each
// round pays a barrier whose cost grows logarithmically with the
// thread count.
func (m MachineModel) ModelDataParallel(t1 time.Duration, rounds, p int) time.Duration {
	e := m.EffectiveParallelism(p)
	work := time.Duration(float64(t1) / e)
	if p <= 1 {
		return t1
	}
	// Barriers cost slightly more as more threads must rendezvous.
	barrier := time.Duration(float64(m.BarrierCost) * float64(rounds) * (1 + math.Log2(float64(p))/5))
	return work + barrier
}
