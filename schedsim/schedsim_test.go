package schedsim

import (
	"math"
	"testing"
	"time"
)

func uniformMachine(threads int) MachineModel {
	return MachineModel{Tiers: []Tier{{Threads: threads, Speed: 1.0}}}
}

func TestSpeedsClampAndOrder(t *testing.T) {
	m := PaperMachine()
	s := m.Speeds(10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	for i := 0; i < 8; i++ {
		if s[i] != 1.0 {
			t.Fatalf("thread %d speed %f", i, s[i])
		}
	}
	for i := 8; i < 10; i++ {
		if s[i] != 0.7 {
			t.Fatalf("thread %d speed %f", i, s[i])
		}
	}
	if got := len(m.Speeds(100)); got != 32 {
		t.Fatalf("over-request gave %d threads", got)
	}
	if got := m.Speeds(0); len(got) != 1 {
		t.Fatalf("zero-request gave %d threads", len(got))
	}
}

func TestEffectiveParallelismKnees(t *testing.T) {
	m := PaperMachine()
	e8, e16, e32 := m.EffectiveParallelism(8), m.EffectiveParallelism(16), m.EffectiveParallelism(32)
	if e8 != 8 {
		t.Fatalf("E(8) = %f", e8)
	}
	if math.Abs(e16-(8+8*0.7)) > 1e-9 {
		t.Fatalf("E(16) = %f", e16)
	}
	if math.Abs(e32-(8+8*0.7+16*0.35)) > 1e-9 {
		t.Fatalf("E(32) = %f", e32)
	}
	// Marginal gain per thread must shrink across the knees.
	if (e16-e8)/8 >= 1.0 || (e32-e16)/16 >= (e16-e8)/8 {
		t.Fatal("knees not monotone")
	}
}

func TestSimulateEmptyAndSingle(t *testing.T) {
	m := uniformMachine(4)
	if got := SimulateTasks(nil, m, 4); got != 0 {
		t.Fatalf("empty makespan %v", got)
	}
	tasks := []Task{{Parent: -1, Duration: time.Millisecond}}
	if got := SimulateTasks(tasks, m, 4); got != time.Millisecond {
		t.Fatalf("single-task makespan %v", got)
	}
}

func TestSimulateSerialChainDoesNotScale(t *testing.T) {
	// The §3.3 pathology: each task spawns exactly one child. Makespan
	// is the sum of durations no matter how many processors exist.
	const n = 100
	tasks := make([]Task, n)
	tasks[0] = Task{Parent: -1, Duration: time.Millisecond}
	for i := 1; i < n; i++ {
		tasks[i] = Task{Parent: int32(i - 1), Duration: time.Millisecond}
	}
	m := uniformMachine(32)
	for _, p := range []int{1, 8, 32} {
		got := SimulateTasks(tasks, m, p)
		if got != n*time.Millisecond {
			t.Fatalf("p=%d chain makespan %v, want %v", p, got, n*time.Millisecond)
		}
	}
}

func TestSimulateIndependentTasksScaleLinearly(t *testing.T) {
	// 64 independent 1ms tasks: p procs → ceil(64/p) ms.
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = Task{Parent: -1, Duration: time.Millisecond}
	}
	m := uniformMachine(64)
	for _, p := range []int{1, 2, 4, 8, 16} {
		got := SimulateTasks(tasks, m, p)
		want := time.Duration(64/p) * time.Millisecond
		if got != want {
			t.Fatalf("p=%d makespan %v, want %v", p, got, want)
		}
	}
}

func TestSimulateSlowTierProcessorsUsedWhenBeneficial(t *testing.T) {
	// 2 tasks, machine with one fast and one half-speed thread: with
	// p=2 the second task should run on the slow thread (2ms) rather
	// than queue behind the fast one (1ms+1ms, but finishing at 2ms
	// too) — makespan must be 2ms, not 3ms.
	m := MachineModel{Tiers: []Tier{{Threads: 1, Speed: 1.0}, {Threads: 1, Speed: 0.5}}}
	tasks := []Task{
		{Parent: -1, Duration: time.Millisecond},
		{Parent: -1, Duration: time.Millisecond},
	}
	got := SimulateTasks(tasks, m, 2)
	if got != 2*time.Millisecond {
		t.Fatalf("makespan %v, want 2ms", got)
	}
}

func TestSimulateDiamondDependency(t *testing.T) {
	// root → two children → (children independent): makespan on 2 procs
	// = root + child; on 1 proc = root + 2×child.
	tasks := []Task{
		{Parent: -1, Duration: 4 * time.Millisecond},
		{Parent: 0, Duration: 3 * time.Millisecond},
		{Parent: 0, Duration: 3 * time.Millisecond},
	}
	m := uniformMachine(8)
	if got := SimulateTasks(tasks, m, 2); got != 7*time.Millisecond {
		t.Fatalf("p=2 makespan %v, want 7ms", got)
	}
	if got := SimulateTasks(tasks, m, 1); got != 10*time.Millisecond {
		t.Fatalf("p=1 makespan %v, want 10ms", got)
	}
}

func TestModelDataParallelIdentityAtOneThread(t *testing.T) {
	m := PaperMachine()
	t1 := 80 * time.Millisecond
	if got := m.ModelDataParallel(t1, 10, 1); got != t1 {
		t.Fatalf("T(1) = %v, want %v", got, t1)
	}
}

func TestModelDataParallelShrinksThenKnees(t *testing.T) {
	m := PaperMachine()
	t1 := 800 * time.Millisecond
	prev := t1
	for _, p := range []int{2, 4, 8} {
		got := m.ModelDataParallel(t1, 20, p)
		if got >= prev {
			t.Fatalf("T(%d) = %v did not shrink from %v", p, got, prev)
		}
		prev = got
	}
	// Within-socket speedup at 8 threads should be near 8x for a phase
	// with few rounds.
	got := m.ModelDataParallel(t1, 20, 8)
	speedup := float64(t1) / float64(got)
	if speedup < 7 || speedup > 8.01 {
		t.Fatalf("8-thread modeled speedup %.2f", speedup)
	}
	// Barrier cost dominates eventually: a many-round tiny phase must
	// not scale.
	tiny := m.ModelDataParallel(100*time.Microsecond, 1000, 32)
	if tiny < 100*time.Microsecond {
		t.Fatalf("barrier-bound phase sped up: %v", tiny)
	}
}

func TestSimulateManyTasksStress(t *testing.T) {
	// A fan-out tree with 10k tasks must simulate quickly and produce a
	// makespan between critical path and total work.
	const n = 10000
	tasks := make([]Task, n)
	var total time.Duration
	for i := range tasks {
		d := time.Duration(1+i%7) * time.Microsecond
		parent := int32(-1)
		if i > 0 {
			parent = int32((i - 1) / 3) // ternary tree
		}
		tasks[i] = Task{Parent: parent, Duration: d}
		total += d
	}
	m := uniformMachine(16)
	got := SimulateTasks(tasks, m, 16)
	if got <= 0 || got > total {
		t.Fatalf("makespan %v outside (0, %v]", got, total)
	}
	seq := SimulateTasks(tasks, m, 1)
	if seq != total {
		t.Fatalf("p=1 makespan %v != total work %v", seq, total)
	}
	if float64(seq)/float64(got) < 8 {
		t.Fatalf("tree speedup %.1f, want ≥ 8 on 16 procs", float64(seq)/float64(got))
	}
}
