package schedsim

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Placement records where and when one task ran in a simulated
// schedule.
type Placement struct {
	// Task is the index into the input task slice.
	Task int32
	// Processor is the simulated thread the task ran on.
	Processor int
	// Start and Finish are simulation timestamps.
	Start, Finish time.Duration
}

// Schedule replays the task DAG like SimulateTasks but returns the
// full placement list along with the makespan, for visualization and
// schedule analysis.
func Schedule(tasks []Task, m MachineModel, p int) ([]Placement, time.Duration) {
	if len(tasks) == 0 {
		return nil, 0
	}
	speeds := m.Speeds(p)
	free := make([]time.Duration, len(speeds))
	children := make([][]int32, len(tasks))
	var ready readyHeap
	for i, t := range tasks {
		if t.Parent < 0 {
			ready = append(ready, readyItem{0, int32(i)})
		} else {
			children[t.Parent] = append(children[t.Parent], int32(i))
		}
	}
	heap.Init(&ready)

	placements := make([]Placement, 0, len(tasks))
	var makespan time.Duration
	for ready.Len() > 0 {
		item := heap.Pop(&ready).(readyItem)
		t := tasks[item.id]
		bestJ, bestStart, bestFinish := 0, time.Duration(0), time.Duration(math.MaxInt64)
		for j := range free {
			start := max(item.at, free[j])
			finish := start + time.Duration(float64(t.Duration)/speeds[j])
			if finish < bestFinish {
				bestJ, bestStart, bestFinish = j, start, finish
			}
		}
		free[bestJ] = bestFinish
		placements = append(placements, Placement{
			Task: item.id, Processor: bestJ, Start: bestStart, Finish: bestFinish,
		})
		if bestFinish > makespan {
			makespan = bestFinish
		}
		for _, c := range children[item.id] {
			heap.Push(&ready, readyItem{bestFinish, c})
		}
	}
	return placements, makespan
}

// chromeEvent is one Chrome trace-event ("X" = complete event).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace emits a simulated schedule in the Chrome
// trace-event JSON format: load the file at chrome://tracing or
// https://ui.perfetto.dev to see which simulated thread ran which task
// when — Baseline's serial chain appears as one long lane, Method 2's
// WCC tasks as a dense parallel block.
func WriteChromeTrace(w io.Writer, tasks []Task, m MachineModel, p int) error {
	placements, _ := Schedule(tasks, m, p)
	events := make([]chromeEvent, 0, len(placements))
	for _, pl := range placements {
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("task%d", pl.Task),
			Ph:   "X",
			Ts:   float64(pl.Start) / float64(time.Microsecond),
			Dur:  float64(pl.Finish-pl.Start) / float64(time.Microsecond),
			Pid:  0,
			Tid:  pl.Processor,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// ParseMachine builds a MachineModel from a compact spec like
// "8x1.0,8x0.7,16x0.35" (threads×speed tiers, fastest first), with an
// optional "@<barrier>" suffix setting the per-round barrier cost,
// e.g. "8x1.0,8x0.5@2us".
func ParseMachine(spec string) (MachineModel, error) {
	m := MachineModel{BarrierCost: time.Microsecond}
	if at := strings.IndexByte(spec, '@'); at >= 0 {
		d, err := time.ParseDuration(spec[at+1:])
		if err != nil {
			return m, fmt.Errorf("schedsim: bad barrier cost %q: %v", spec[at+1:], err)
		}
		m.BarrierCost = d
		spec = spec[:at]
	}
	for _, part := range strings.Split(spec, ",") {
		var threads int
		var speed float64
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%dx%f", &threads, &speed); err != nil {
			return m, fmt.Errorf("schedsim: bad tier %q (want <threads>x<speed>)", part)
		}
		if threads < 1 || speed <= 0 {
			return m, fmt.Errorf("schedsim: invalid tier %q", part)
		}
		m.Tiers = append(m.Tiers, Tier{Threads: threads, Speed: speed})
	}
	if len(m.Tiers) == 0 {
		return m, fmt.Errorf("schedsim: empty machine spec")
	}
	return m, nil
}
