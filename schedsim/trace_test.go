package schedsim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestScheduleMatchesSimulate(t *testing.T) {
	tasks := []Task{
		{Parent: -1, Duration: 4 * time.Millisecond},
		{Parent: 0, Duration: 3 * time.Millisecond},
		{Parent: 0, Duration: 3 * time.Millisecond},
		{Parent: 1, Duration: time.Millisecond},
	}
	m := uniformMachine(8)
	for _, p := range []int{1, 2, 4} {
		placements, makespan := Schedule(tasks, m, p)
		if got := SimulateTasks(tasks, m, p); got != makespan {
			t.Fatalf("p=%d: Schedule makespan %v != SimulateTasks %v", p, makespan, got)
		}
		if len(placements) != len(tasks) {
			t.Fatalf("p=%d: %d placements", p, len(placements))
		}
		// Placements must respect dependencies and processor exclusivity.
		finish := map[int32]time.Duration{}
		for _, pl := range placements {
			finish[pl.Task] = pl.Finish
		}
		for _, pl := range placements {
			parent := tasks[pl.Task].Parent
			if parent >= 0 && pl.Start < finish[parent] {
				t.Fatalf("task %d started before parent finished", pl.Task)
			}
		}
		byProc := map[int][]Placement{}
		for _, pl := range placements {
			byProc[pl.Processor] = append(byProc[pl.Processor], pl)
		}
		for proc, pls := range byProc {
			for i := range pls {
				for j := i + 1; j < len(pls); j++ {
					a, b := pls[i], pls[j]
					if a.Start < b.Finish && b.Start < a.Finish {
						t.Fatalf("processor %d double-booked: %+v vs %+v", proc, a, b)
					}
				}
			}
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tasks := []Task{
		{Parent: -1, Duration: time.Millisecond},
		{Parent: 0, Duration: 2 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tasks, uniformMachine(2), 2); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("%d events", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["name"] == "" {
		t.Fatalf("event malformed: %v", events[0])
	}
}

func TestParseMachine(t *testing.T) {
	m, err := ParseMachine("8x1.0,8x0.7,16x0.35@4us")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tiers) != 3 || m.Tiers[1].Speed != 0.7 || m.Tiers[2].Threads != 16 {
		t.Fatalf("tiers %+v", m.Tiers)
	}
	if m.BarrierCost != 4*time.Microsecond {
		t.Fatalf("barrier %v", m.BarrierCost)
	}
	m2, err := ParseMachine("4x1.0")
	if err != nil || len(m2.Tiers) != 1 || m2.BarrierCost != time.Microsecond {
		t.Fatalf("simple spec: %v %+v", err, m2)
	}
	for _, bad := range []string{"", "x1.0", "4x0", "0x1", "4x1.0@nope", "a,b"} {
		if _, err := ParseMachine(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
